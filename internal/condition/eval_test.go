package condition

import (
	"errors"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// obs builds a test observation entity.
func obs(mote string, seq uint64, t timemodel.Time, loc spatial.Location, attrs event.Attrs) event.Observation {
	return event.Observation{
		Mote: mote, Sensor: "SR", Seq: seq,
		Time: t, Loc: loc, Attrs: attrs,
	}
}

func TestEvalPaperS1(t *testing.T) {
	// S1 (Sec. 4.1): "every instance of physical observation x occurs
	// before physical observation y and the distance between the location
	// of x and the location of y is less than 5 meters".
	s1 := MustParse("x.time before y.time and dist(x.loc, y.loc) < 5")

	tests := []struct {
		name string
		x, y event.Entity
		want bool
	}{
		{
			name: "both conditions hold",
			x:    obs("MT1", 1, timemodel.At(10), spatial.AtPoint(0, 0), nil),
			y:    obs("MT2", 1, timemodel.At(20), spatial.AtPoint(3, 0), nil),
			want: true,
		},
		{
			name: "temporal fails",
			x:    obs("MT1", 2, timemodel.At(30), spatial.AtPoint(0, 0), nil),
			y:    obs("MT2", 2, timemodel.At(20), spatial.AtPoint(3, 0), nil),
			want: false,
		},
		{
			name: "spatial fails",
			x:    obs("MT1", 3, timemodel.At(10), spatial.AtPoint(0, 0), nil),
			y:    obs("MT2", 3, timemodel.At(20), spatial.AtPoint(9, 0), nil),
			want: false,
		},
		{
			name: "boundary distance excluded",
			x:    obs("MT1", 4, timemodel.At(10), spatial.AtPoint(0, 0), nil),
			y:    obs("MT2", 4, timemodel.At(20), spatial.AtPoint(5, 0), nil),
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := s1.Eval(Binding{"x": tt.x, "y": tt.y})
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if got != tt.want {
				t.Fatalf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvalPaperOffsetExample(t *testing.T) {
	// "every event instance of event x must occur AFTER 5 time units
	// Before event y": t°x + 5 Before t°y.
	e := MustParse("x.time + 5 before y.time")
	x := obs("MT1", 1, timemodel.At(10), spatial.AtPoint(0, 0), nil)
	tests := []struct {
		name  string
		yTick timemodel.Tick
		want  bool
	}{
		{"far enough after", 20, true},
		{"exactly at shifted point", 15, false},
		{"too soon", 12, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			y := obs("MT2", 1, timemodel.At(tt.yTick), spatial.AtPoint(0, 0), nil)
			got, err := e.Eval(Binding{"x": x, "y": y})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("y@%d: got %v, want %v", tt.yTick, got, tt.want)
			}
		})
	}
}

func TestEvalSpatialInside(t *testing.T) {
	// "every event instance of event x must occur Inside event y".
	e := MustParse("x.loc inside y.loc")
	roomField := spatial.MustField(
		spatial.Pt(0, 0), spatial.Pt(10, 0), spatial.Pt(10, 10), spatial.Pt(0, 10))
	y := obs("MT2", 1, timemodel.At(0), spatial.InField(roomField), nil)

	in := obs("MT1", 1, timemodel.At(0), spatial.AtPoint(5, 5), nil)
	out := obs("MT1", 2, timemodel.At(0), spatial.AtPoint(15, 5), nil)

	if got, _ := e.Eval(Binding{"x": in, "y": y}); !got {
		t.Error("point in room should be inside")
	}
	if got, _ := e.Eval(Binding{"x": out, "y": y}); got {
		t.Error("point out of room must not be inside")
	}
}

func TestEvalAttributeAggregation(t *testing.T) {
	// "The average attribute of physical observation x and y is Greater
	// than C": Average(Vx, Vy) > C.
	e := MustParse("avg(x.v, y.v) > 20")
	x := obs("MT1", 1, timemodel.At(0), spatial.AtPoint(0, 0), event.Attrs{"v": 18})
	y := obs("MT2", 1, timemodel.At(0), spatial.AtPoint(0, 0), event.Attrs{"v": 25})
	got, err := e.Eval(Binding{"x": x, "y": y})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("avg(18,25)=21.5 > 20 should hold")
	}
	y2 := obs("MT2", 2, timemodel.At(0), spatial.AtPoint(0, 0), event.Attrs{"v": 21})
	if got, _ := e.Eval(Binding{"x": x, "y": y2}); got {
		t.Error("avg(18,21)=19.5 > 20 must not hold")
	}
}

func TestEvalErrors(t *testing.T) {
	x := obs("MT1", 1, timemodel.At(0), spatial.AtPoint(0, 0), event.Attrs{"v": 1})
	tests := []struct {
		name    string
		expr    string
		binding Binding
		wantErr error
	}{
		{"unbound role", "x.v > 0 and y.v > 0", Binding{"x": x}, ErrUnboundRole},
		{"unknown attribute", "x.missing > 0", Binding{"x": x}, ErrUnknownAttr},
		{"nil entity", "x.v > 0", Binding{"x": nil}, ErrUnboundRole},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := MustParse(tt.expr).Eval(tt.binding)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestEvalShortCircuit(t *testing.T) {
	x := obs("MT1", 1, timemodel.At(0), spatial.AtPoint(0, 0), event.Attrs{"v": 1})
	// The second operand references an unbound role but must never be
	// evaluated.
	and := MustParse("x.v < 0 and y.v > 0")
	if got, err := and.Eval(Binding{"x": x}); err != nil || got {
		t.Errorf("and short-circuit: got (%v, %v), want (false, nil)", got, err)
	}
	or := MustParse("x.v > 0 or y.v > 0")
	if got, err := or.Eval(Binding{"x": x}); err != nil || !got {
		t.Errorf("or short-circuit: got (%v, %v), want (true, nil)", got, err)
	}
}

func TestEvalIntervalSemantics(t *testing.T) {
	// An interval occurrence (the "light on for 30 minutes" style event).
	lightOn := obs("MT1", 1, timemodel.MustBetween(100, 160), spatial.AtPoint(0, 0), nil)
	probe := obs("MT2", 1, timemodel.At(120), spatial.AtPoint(0, 0), nil)

	during := MustParse("x.time during y.time")
	if got, _ := during.Eval(Binding{"x": probe, "y": lightOn}); !got {
		t.Error("@120 should be during [100,160]")
	}
	dur := MustParse("duration(y.time) >= 60")
	if got, _ := dur.Eval(Binding{"y": lightOn}); !got {
		t.Error("duration 60 >= 60 should hold")
	}
	startEnd := MustParse("y.start before y.end")
	if got, _ := startEnd.Eval(Binding{"y": lightOn}); !got {
		t.Error("interval start should be before its end")
	}
}

func TestEvalSpatialAggregations(t *testing.T) {
	a := obs("MT1", 1, timemodel.At(0), spatial.AtPoint(0, 0), nil)
	b := obs("MT2", 1, timemodel.At(0), spatial.AtPoint(4, 0), nil)
	c := obs("MT3", 1, timemodel.At(0), spatial.AtPoint(2, 4), nil)

	e := MustParse("centroid(a.loc, b.loc, c.loc) inside rect(1, 0, 3, 2)")
	got, err := e.Eval(Binding{"a": a, "b": b, "c": c})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("centroid (2, 1.33) should be inside rect(1,0,3,2)")
	}

	hull := MustParse("area(hull(a.loc, b.loc, c.loc)) == 8")
	got, err = hull.Eval(Binding{"a": a, "b": b, "c": c})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("hull area of triangle (0,0),(4,0),(2,4) should be 8")
	}
}

func TestEvalNumericEdgeCases(t *testing.T) {
	x := obs("MT1", 1, timemodel.At(0), spatial.AtPoint(0, 0), event.Attrs{"a": -3, "b": 2})
	tests := []struct {
		expr string
		want bool
	}{
		{"abs(x.a) == 3", true},
		{"x.a + x.b == -1", true},
		{"x.a - x.b == -5", true},
		{"min(x.a, x.b) == -3", true},
		{"max(x.a, x.b) == 2", true},
		{"sum(x.a, x.b) != -1", false},
		{"area(x.loc) == 0", true}, // points have zero area
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := MustParse(tt.expr).Eval(Binding{"x": x})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvalRelOpTable(t *testing.T) {
	tests := []struct {
		op   RelOp
		a, b float64
		want bool
	}{
		{OpGt, 2, 1, true}, {OpGt, 1, 1, false},
		{OpGe, 1, 1, true}, {OpGe, 0, 1, false},
		{OpLt, 0, 1, true}, {OpLt, 1, 1, false},
		{OpLe, 1, 1, true}, {OpLe, 2, 1, false},
		{OpEq, 3, 3, true}, {OpEq, 3, 4, false},
		{OpNe, 3, 4, true}, {OpNe, 3, 3, false},
	}
	for _, tt := range tests {
		if got := tt.op.Apply(tt.a, tt.b); got != tt.want {
			t.Errorf("%v(%g,%g) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
	if RelOp(99).Apply(1, 2) {
		t.Error("unknown relop must evaluate false")
	}
	if RelOp(99).String() == "" || Type(99).String() == "" {
		t.Error("unknown enums must render")
	}
}
