package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/wireclient"
)

// reservePorts binds n ephemeral listeners and returns their addresses
// after closing them — the cluster flag needs every member's address
// before any daemon starts.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

const clusterEvents = `[
  {"id": "E.high", "layer": "sensor",
   "roles": [{"name": "x", "source": "SR1", "window": 1}],
   "when": "x.v > 5"}
]`

// TestDaemonClusterFlagValidation covers the cluster-mode flag
// contract without starting any listener.
func TestDaemonClusterFlagValidation(t *testing.T) {
	events := writeEvents(t)
	for _, args := range [][]string{
		{"-events", events, "-cluster", "a:1/a:2,b:1/b:2"},                                               // no -tcp/-http
		{"-events", events, "-cluster", "a:1/a:2,b:1/b:2", "-tcp", ":0"},                                 // no -http
		{"-events", events, "-cluster", "a:1/a:2,b:1/b:2", "-tcp", ":0", "-http", ":0", "-workers", "4"}, // sharded
		{"-events", events, "-cluster", "garbage", "-tcp", ":0", "-http", ":0"},                          // bad list
	} {
		var out, errw strings.Builder
		if err := run(args, strings.NewReader(""), &out, &errw); err == nil {
			t.Errorf("run(%v) accepted an invalid cluster config", args)
		}
	}
}

// TestDaemonClusterEndToEnd boots a real 3-daemon cluster in-process:
// wire ingest through node 0 fans records out to their owners, and the
// gateway /v1/query merges every partition in HLC order.
func TestDaemonClusterEndToEnd(t *testing.T) {
	const n = 3
	eventsPath := filepath.Join(t.TempDir(), "events.json")
	if err := os.WriteFile(eventsPath, []byte(clusterEvents), 0o644); err != nil {
		t.Fatal(err)
	}

	wire := reservePorts(t, n)
	httpa := reservePorts(t, n)
	var members []string
	for i := 0; i < n; i++ {
		members = append(members, wire[i]+"/"+httpa[i])
	}
	clusterArg := strings.Join(members, ",")

	type daemon struct {
		stdin io.WriteCloser
		done  chan error
		errw  *strings.Builder
	}
	daemons := make([]*daemon, n)
	for i := 0; i < n; i++ {
		pr, pw := io.Pipe()
		d := &daemon{stdin: pw, done: make(chan error, 1), errw: &strings.Builder{}}
		daemons[i] = d
		var out strings.Builder
		args := []string{
			"-events", eventsPath, "-observer", "cluster",
			"-tcp", wire[i], "-http", httpa[i],
			"-cluster", clusterArg, "-node-id", strconv.Itoa(i),
			"-replicas", "1",
		}
		go func() { d.done <- run(args, pr, &out, d.errw) }()
	}
	defer func() {
		for i, d := range daemons {
			d.stdin.Close()
			if err := <-d.done; err != nil {
				t.Errorf("daemon %d: %v (stderr: %s)", i, err, d.errw.String())
			}
		}
	}()

	// Wait for every member to serve.
	for i := 0; i < n; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + httpa[i] + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon %d never served (stderr: %s)", i, daemons[i].errw.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Feed through node 0: observations scattered over many grid cells
	// so every node owns a share.
	c, err := wireclient.Dial(wire[0], wireclient.Options{BatchRecords: 8, DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const total = 90
	for i := 0; i < total; i++ {
		o := event.Observation{
			Mote: "MT", Sensor: "SR1", Seq: uint64(i + 1),
			Time:  timemodel.At(timemodel.Tick(i + 1)),
			Loc:   spatial.AtPoint(float64(i%9)*64+5, 5),
			Attrs: event.Attrs{"v": float64(i % 10)},
		}
		if err := c.SendObservation(&o); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// v in 6..9 fires E.high: 4 of every 10 records.
	wantHits := 0
	for i := 0; i < total; i++ {
		if float64(i%10) > 5 {
			wantHits++
		}
	}

	// The gateway merge must return every emission, in HLC order, from
	// any member.
	for gw := 0; gw < n; gw++ {
		var res gatherResponse
		getJSON(t, "http://"+httpa[gw]+"/v1/query", &res)
		if res.Count != wantHits {
			t.Fatalf("gateway %d returned %d instances, want %d (stderr: %s)",
				gw, res.Count, wantHits, daemons[gw].errw.String())
		}
		if res.Partitions != n {
			t.Errorf("gateway %d consulted %d partitions, want %d", gw, res.Partitions, n)
		}
		if !sort.SliceIsSorted(res.Stamps, func(a, b int) bool {
			x, _ := strconv.ParseUint(res.Stamps[a], 10, 64)
			y, _ := strconv.ParseUint(res.Stamps[b], 10, 64)
			return x < y
		}) {
			t.Errorf("gateway %d page not in HLC order", gw)
		}
	}

	// Paged gather through the composite cursor concatenates to the
	// same stream.
	var paged int
	cursor := ""
	for {
		u := "http://" + httpa[0] + "/v1/query?limit=7"
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		var res gatherResponse
		getJSON(t, u, &res)
		paged += res.Count
		if res.NextCursor == "" {
			break
		}
		cursor = res.NextCursor
		if paged > wantHits {
			t.Fatalf("paged gather overran: %d > %d", paged, wantHits)
		}
	}
	if paged != wantHits {
		t.Fatalf("paged gather returned %d, want %d", paged, wantHits)
	}

	// A partition page is served directly for peer gateways.
	var page partitionPageResponse
	getJSON(t, "http://"+httpa[1]+"/v1/query?partition=0", &page)
	if len(page.Instances) != page.Count || len(page.Seqs) != page.Count || len(page.Stamps) != page.Count {
		t.Fatalf("partition page arrays not parallel: %+v", page)
	}

	// /stats exposes the cluster section, and the ingress node must
	// have forwarded remote-owned records.
	var stats statsResponse
	getJSON(t, "http://"+httpa[0]+"/v1/stats", &stats)
	if stats.Cluster == nil {
		t.Fatal("stats has no cluster section")
	}
	if stats.Cluster.Self != 0 || len(stats.Cluster.Nodes) != n {
		t.Fatalf("cluster stats: %+v", stats.Cluster)
	}
	if stats.Cluster.Coordinator.Forwarded == 0 {
		t.Errorf("ingress node forwarded nothing: %+v", stats.Cluster.Coordinator)
	}
	if stats.Cluster.Coordinator.Replicated == 0 {
		t.Errorf("ingress node replicated nothing: %+v", stats.Cluster.Coordinator)
	}
}

func getJSON(t *testing.T, u string, v any) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", u, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", u, body, err)
	}
}
