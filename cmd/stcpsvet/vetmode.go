package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"github.com/stcps/stcps/internal/analysis"
)

// vetConfig is the JSON unit description cmd/go writes for -vettool
// tools — the same wire format golang.org/x/tools' unitchecker reads.
// Fields the suite does not need (fact I/O beyond an empty placeholder,
// ID, non-Go files) are decoded only where cmd/go requires a response.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path  -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit described by cfgFile and returns
// the process exit code: 0 clean, 1 internal error, 2 findings —
// cmd/go surfaces the stderr text either way.
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading %s: %v", cfgFile, err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgFile, err)
	}

	// The suite exports no facts, but cmd/go reads the vetx output of
	// dependencies when analyzing dependents, so always leave a (empty)
	// file behind.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing %s: %v", cfg.VetxOutput, err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the build already
	// produced: ImportMap canonicalizes the path (vendoring, test
	// variants), PackageFile locates the compiler's export file.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tc := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, buildArch()),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	count, err := runSuite(&analysis.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if count > 0 {
		return 2
	}
	return 0
}

// buildArch is the architecture the unit was compiled for: GOARCH when
// cmd/go set it, the host otherwise.
func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
