package condition

import (
	"math/rand"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// compile_test.go cross-checks the slot compiler against the interpreted
// evaluator: for every generated expression and binding, the compiled
// form must produce the same truth value (or error exactly when the
// interpreter errors), and evaluation must not allocate.

// slotBinding converts a map binding to the compiled slice form.
func slotBinding(t *testing.T, m *SlotMap, b Binding) []event.Entity {
	t.Helper()
	ents := make([]event.Entity, m.Len())
	for role, e := range b {
		slot, ok := m.Slot(role)
		if !ok {
			t.Fatalf("role %q missing from slot map", role)
		}
		ents[slot] = e
	}
	return ents
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	slots := NewSlotMap([]string{"x", "y"})
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &exprGen{rng: rng}
		e := g.expr(3)
		c, err := Compile(e, slots)
		if err != nil {
			t.Fatalf("seed %d: compile %s: %v", seed, e, err)
		}
		for trial := 0; trial < 8; trial++ {
			b := randomBinding(rng)
			want, wantErr := e.Eval(b)
			got, gotErr := c.Eval(slotBinding(t, slots, b))
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("seed %d trial %d: %s\ninterpreted err=%v, compiled err=%v",
					seed, trial, e, wantErr, gotErr)
			}
			if wantErr == nil && want != got {
				t.Fatalf("seed %d trial %d: %s\ninterpreted=%v, compiled=%v",
					seed, trial, e, want, got)
			}
		}
	}
}

func TestCompiledUnboundRole(t *testing.T) {
	slots := NewSlotMap([]string{"x", "y"})
	c, err := Compile(MustParse("x.a > 0 and y.b > 0"), slots)
	if err != nil {
		t.Fatal(err)
	}
	ents := make([]event.Entity, slots.Len())
	ents[0] = event.Observation{Mote: "M", Sensor: "S", Attrs: event.Attrs{"a": 1}}
	if _, err := c.Eval(ents); err == nil {
		t.Fatal("unbound slot must error")
	}
}

func TestCompileRejectsUnknownRole(t *testing.T) {
	slots := NewSlotMap([]string{"x"})
	if _, err := Compile(MustParse("z.a > 0"), slots); err == nil {
		t.Fatal("compile must reject roles missing from the slot map")
	}
}

func TestCompiledConstantFolding(t *testing.T) {
	slots := NewSlotMap([]string{"x"})
	// A role-free subterm folds; the whole role-free comparison folds to
	// a boolean literal.
	c, err := Compile(MustParse("avg(1, 2, 3) > 1 and x.a > 0"), slots)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := c.root.(*cAnd)
	if !ok {
		t.Fatalf("root = %T, want *cAnd", c.root)
	}
	if _, ok := and.l.(*cBool); !ok {
		t.Errorf("constant conjunct compiled to %T, want folded *cBool", and.l)
	}
}

// TestCompiledEvalAllocs pins the planner's hot-loop contract: compiled
// evaluation of a multi-clause spatio-temporal condition over a slot
// binding performs zero allocations.
func TestCompiledEvalAllocs(t *testing.T) {
	slots := NewSlotMap([]string{"x", "y", "z"})
	c, err := Compile(MustParse(
		"x.time before y.time and dist(x.loc, y.loc) < 5 and x.a > 0.5 and avg(x.a, y.a, z.a) < 10"), slots)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, tick timemodel.Tick, x float64) event.Observation {
		return event.Observation{
			Mote: id, Sensor: "S", Seq: 1,
			Time:  timemodel.At(tick),
			Loc:   spatial.AtPoint(x, 0),
			Attrs: event.Attrs{"a": 1},
		}
	}
	ents := []event.Entity{mk("A", 1, 0), mk("B", 2, 1), mk("C", 3, 2)}
	if _, err := c.Eval(ents); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Eval(ents); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled eval allocates %v times per run, want 0", allocs)
	}
}
