// Package baseline implements the prior event models that Tan, Vuran,
// Goddard (ICDCSW 2009) survey in Section 2, as comparison baselines for
// the spatio-temporal CPS event model (experiment E8 in DESIGN.md):
//
//   - PointEngine — a Snoop-style active-database composite event engine
//     with point-based (punctual) occurrence semantics and the operators
//     And, Or, Seq (recent context);
//   - IntervalEngine — a SnoopIB-style engine whose occurrences are time
//     intervals, adding During and Overlap;
//   - RTLMonitor — an RTL-style timing-constraint monitor over punctual
//     event occurrences (deadline/delay constraints between events).
//
// None of the baselines support spatial conditions; the point-based ones
// additionally cannot express interval relations — exactly the gaps the
// paper identifies ("the interval-based temporal relationships such as
// During, Overlap are not addressed"). The Compare harness scores every
// engine, plus the full ST-CPS detector, on a common scenario suite.
package baseline

import (
	"errors"
	"fmt"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// ErrBadRule is returned for structurally invalid rules.
var ErrBadRule = errors.New("baseline: invalid rule")

// Prim is a primitive event occurrence fed to the baseline engines. The
// point-based engines observe only the occurrence end (their "detection
// point"); the interval engine sees the full occurrence; only the ST-CPS
// model also uses the location.
type Prim struct {
	// ID is the primitive event identifier.
	ID string
	// Time is the full occurrence time.
	Time timemodel.Time
	// Loc is the occurrence location (ignored by all baselines).
	Loc spatial.Location
}

// point returns the punctual abstraction of the primitive: its end tick.
func (p Prim) point() timemodel.Tick { return p.Time.End() }

// Detection is a composite event occurrence reported by an engine.
type Detection struct {
	// Rule is the composite rule name.
	Rule string
	// Occ is the reported occurrence: punctual for point-based engines.
	Occ timemodel.Time
}

// PointOp is a Snoop-style composite operator with point semantics.
type PointOp int

// Point-engine operators.
const (
	// PAnd detects when both constituents have occurred, in any order.
	PAnd PointOp = iota + 1
	// POr detects on any constituent occurrence.
	POr
	// PSeq detects when A occurs strictly before B.
	PSeq
)

// String returns the operator name.
func (op PointOp) String() string {
	switch op {
	case PAnd:
		return "and"
	case POr:
		return "or"
	case PSeq:
		return "seq"
	default:
		return fmt.Sprintf("PointOp(%d)", int(op))
	}
}

// PointRule is a binary composite rule for the point engine.
type PointRule struct {
	// Name identifies detections of this rule.
	Name string
	// Op is the composite operator.
	Op PointOp
	// A and B are the constituent primitive ids.
	A, B string
	// Window bounds |t_A − t_B| (0 = unbounded).
	Window timemodel.Tick
}

func (r PointRule) validate() error {
	if r.Name == "" || r.A == "" || r.B == "" {
		return fmt.Errorf("point rule needs name and constituents: %w", ErrBadRule)
	}
	switch r.Op {
	case PAnd, POr, PSeq:
		return nil
	default:
		return fmt.Errorf("point rule op %v: %w", r.Op, ErrBadRule)
	}
}

// PointEngine is the Snoop-style engine. Occurrence times of detections
// are single points — the engine structurally cannot represent interval
// events, which is what E8 demonstrates.
type PointEngine struct {
	rules  []PointRule
	latest map[string]timemodel.Tick
	seen   map[string]bool
}

// NewPointEngine builds an engine from rules.
func NewPointEngine(rules ...PointRule) (*PointEngine, error) {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	return &PointEngine{
		rules:  append([]PointRule(nil), rules...),
		latest: make(map[string]timemodel.Tick),
		seen:   make(map[string]bool),
	}, nil
}

// Offer feeds one primitive occurrence (observed at its end point, recent
// context) and returns any detections it completes.
func (e *PointEngine) Offer(p Prim) []Detection {
	t := p.point()
	var out []Detection
	for _, r := range e.rules {
		switch r.Op {
		case POr:
			if p.ID == r.A || p.ID == r.B {
				out = append(out, Detection{Rule: r.Name, Occ: timemodel.At(t)})
			}
		case PAnd:
			var other string
			switch p.ID {
			case r.A:
				other = r.B
			case r.B:
				other = r.A
			default:
				continue
			}
			ot, ok := e.latest[other]
			if !ok {
				continue
			}
			gap := t - ot
			if gap < 0 {
				gap = -gap
			}
			if r.Window > 0 && gap > r.Window {
				continue
			}
			det := t
			if ot > det {
				det = ot
			}
			out = append(out, Detection{Rule: r.Name, Occ: timemodel.At(det)})
		case PSeq:
			if p.ID != r.B {
				continue
			}
			at, ok := e.latest[r.A]
			if !ok || at >= t {
				continue
			}
			if r.Window > 0 && t-at > r.Window {
				continue
			}
			out = append(out, Detection{Rule: r.Name, Occ: timemodel.At(t)})
		}
	}
	e.latest[p.ID] = t
	e.seen[p.ID] = true
	return out
}

// IntervalOp is a SnoopIB-style composite operator with interval
// semantics.
type IntervalOp int

// Interval-engine operators.
const (
	// IAnd detects when both constituents have occurred (hull
	// occurrence).
	IAnd IntervalOp = iota + 1
	// IOr detects on any constituent occurrence.
	IOr
	// ISeq detects when A's occurrence ends before B's begins.
	ISeq
	// IDuring detects when A's occurrence lies within B's.
	IDuring
	// IOverlap detects when the occurrences share ticks.
	IOverlap
)

// String returns the operator name.
func (op IntervalOp) String() string {
	switch op {
	case IAnd:
		return "and"
	case IOr:
		return "or"
	case ISeq:
		return "seq"
	case IDuring:
		return "during"
	case IOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("IntervalOp(%d)", int(op))
	}
}

// IntervalRule is a binary composite rule for the interval engine.
type IntervalRule struct {
	// Name identifies detections of this rule.
	Name string
	// Op is the composite operator.
	Op IntervalOp
	// A and B are the constituent primitive ids.
	A, B string
}

func (r IntervalRule) validate() error {
	if r.Name == "" || r.A == "" || r.B == "" {
		return fmt.Errorf("interval rule needs name and constituents: %w", ErrBadRule)
	}
	switch r.Op {
	case IAnd, IOr, ISeq, IDuring, IOverlap:
		return nil
	default:
		return fmt.Errorf("interval rule op %v: %w", r.Op, ErrBadRule)
	}
}

// IntervalEngine is the SnoopIB-style engine: occurrences are intervals,
// so During/Overlap are expressible; spatial conditions remain out of
// scope.
type IntervalEngine struct {
	rules  []IntervalRule
	latest map[string]timemodel.Time
	seen   map[string]bool
}

// NewIntervalEngine builds an engine from rules.
func NewIntervalEngine(rules ...IntervalRule) (*IntervalEngine, error) {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	return &IntervalEngine{
		rules:  append([]IntervalRule(nil), rules...),
		latest: make(map[string]timemodel.Time),
		seen:   make(map[string]bool),
	}, nil
}

// Offer feeds one primitive occurrence and returns completions.
func (e *IntervalEngine) Offer(p Prim) []Detection {
	var out []Detection
	for _, r := range e.rules {
		if p.ID != r.A && p.ID != r.B {
			continue
		}
		switch r.Op {
		case IOr:
			out = append(out, Detection{Rule: r.Name, Occ: p.Time})
			continue
		case IAnd:
			other := r.A
			if p.ID == r.A {
				other = r.B
			}
			ot, ok := e.latest[other]
			if !ok {
				continue
			}
			out = append(out, Detection{Rule: r.Name, Occ: p.Time.Hull(ot)})
			continue
		}
		// Directional relations need both sides resolved as (a, b).
		var a, b timemodel.Time
		var haveA, haveB bool
		if p.ID == r.A {
			a, haveA = p.Time, true
			b, haveB = e.latest[r.B]
		} else {
			b, haveB = p.Time, true
			a, haveA = e.latest[r.A]
		}
		if !haveA || !haveB {
			continue
		}
		switch r.Op {
		case ISeq:
			if a.End() < b.Start() {
				out = append(out, Detection{Rule: r.Name, Occ: a.Hull(b)})
			}
		case IDuring:
			if timemodel.OpDuring.Apply(a, b) {
				out = append(out, Detection{Rule: r.Name, Occ: a})
			}
		case IOverlap:
			if a.Intersects(b) {
				out = append(out, Detection{Rule: r.Name, Occ: a.Hull(b)})
			}
		}
	}
	e.latest[p.ID] = p.Time
	e.seen[p.ID] = true
	return out
}

// RTLConstraint is an RTL-style timing constraint between two punctual
// event occurrences: it is satisfied when B occurs with
// t_B − t_A ∈ [MinGap, MaxGap] for the most recent A.
type RTLConstraint struct {
	// Name identifies detections of this constraint.
	Name string
	// A and B are the constrained primitive ids.
	A, B string
	// MinGap and MaxGap bound t_B − t_A inclusive.
	MinGap, MaxGap timemodel.Tick
}

func (c RTLConstraint) validate() error {
	if c.Name == "" || c.A == "" || c.B == "" {
		return fmt.Errorf("rtl constraint needs name and events: %w", ErrBadRule)
	}
	if c.MaxGap < c.MinGap {
		return fmt.Errorf("rtl constraint gap [%d,%d]: %w", c.MinGap, c.MaxGap, ErrBadRule)
	}
	return nil
}

// RTLMonitor checks point-based timing constraints (the paper's Section 2
// RTL critique: no interval relations, no space).
type RTLMonitor struct {
	constraints []RTLConstraint
	latest      map[string]timemodel.Tick
}

// NewRTLMonitor builds a monitor from constraints.
func NewRTLMonitor(constraints ...RTLConstraint) (*RTLMonitor, error) {
	for _, c := range constraints {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	return &RTLMonitor{
		constraints: append([]RTLConstraint(nil), constraints...),
		latest:      make(map[string]timemodel.Tick),
	}, nil
}

// Offer feeds one primitive occurrence (point abstraction) and returns
// satisfied constraints.
func (m *RTLMonitor) Offer(p Prim) []Detection {
	t := p.point()
	var out []Detection
	for _, c := range m.constraints {
		if p.ID != c.B {
			continue
		}
		at, ok := m.latest[c.A]
		if !ok {
			continue
		}
		gap := t - at
		if gap >= c.MinGap && gap <= c.MaxGap {
			out = append(out, Detection{Rule: c.Name, Occ: timemodel.At(t)})
		}
	}
	m.latest[p.ID] = t
	return out
}
