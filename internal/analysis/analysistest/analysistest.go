// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against // want "regexp" comments embedded
// in the fixture source — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// stdlib so the suite works in the network-less build container.
//
// A fixture is one directory of .go files forming a single package.
// Every line that should trigger a diagnostic carries a trailing
// comment:
//
//	n := make([]int, 8) // want `make allocates`
//
// Multiple expectations on one line are listed in order:
//
//	x, y = f(a), g(b) // want `boxed` `boxed`
//
// Expectations are regular expressions matched against the diagnostic
// message; both `backquoted` and "quoted" forms are accepted. The run
// fails on any unmatched diagnostic or unsatisfied expectation, so
// clean-code fixtures (no want comments at all) double as
// false-positive regression tests.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"github.com/stcps/stcps/internal/analysis"
)

// wantRe matches one expectation inside a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// commentRe matches the want comment itself.
var commentRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one // want entry, keyed by file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the fixture package in dir, applies a, and reports every
// mismatch between produced diagnostics and // want expectations as
// test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg := load(t, dir)
	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, dir, err)
	}
	expects := collectWants(t, pkg)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !consume(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.re)
		}
	}
}

// load parses and type-checks the fixture directory as one package.
func load(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &analysis.Package{
		ImportPath: tpkg.Path(),
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}
}

// collectWants extracts every // want expectation from the fixture.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := commentRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// consume marks the first unused expectation for (file, line) whose
// pattern matches msg.
func consume(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.used || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}
