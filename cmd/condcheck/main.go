// Command condcheck parses and type-checks an ST-CPS condition-language
// expression and prints its canonical form and the entity roles it binds.
//
// Usage:
//
//	condcheck -e "x.time before y.time and dist(x.loc, y.loc) < 5"
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	stcps "github.com/stcps/stcps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "condcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("condcheck", flag.ContinueOnError)
	expr := fs.String("e", "", "condition expression to check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expr == "" && fs.NArg() > 0 {
		*expr = strings.Join(fs.Args(), " ")
	}
	if *expr == "" {
		return errors.New("no expression given (use -e)")
	}
	cond, err := stcps.ParseCondition(*expr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "input:     %s\n", *expr)
	fmt.Fprintf(out, "canonical: %s\n", cond.String())
	fmt.Fprintf(out, "roles:     %s\n", strings.Join(cond.Roles(), ", "))
	return nil
}
