package main

import (
	"bufio"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/frame"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/wireclient"
)

// syncBuffer is a goroutine-safe strings.Builder: with -tcp, connection
// handlers log concurrently with the daemon's own stderr writes.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func tempInstance(seq uint64, tick timemodel.Tick, temp float64) event.Instance {
	return event.Instance{
		Layer: event.LayerSensor, Observer: "MT1", Event: "S.temp",
		Seq: seq, Gen: tick,
		GenLoc:     spatial.AtPoint(0, 0),
		Occ:        timemodel.At(tick),
		Loc:        spatial.AtPoint(0, 0),
		Attrs:      event.Attrs{"temp": temp},
		Confidence: 0.9,
	}
}

// startWireDaemon runs the daemon with -tcp against a stdin pipe held
// open and returns the wire address, the pipe's write end (close it to
// trigger the normal EOF teardown), the run result channel, and the
// output buffers.
func startWireDaemon(t *testing.T, extraArgs ...string) (string, *io.PipeWriter, <-chan error, *strings.Builder, *syncBuffer) {
	t.Helper()
	events := writeEvents(t)
	pr, pw := io.Pipe()
	addrCh := make(chan string, 1)
	tcpReady = func(addr string) { addrCh <- addr }
	t.Cleanup(func() { tcpReady = nil })

	var out strings.Builder
	errw := &syncBuffer{}
	done := make(chan error, 1)
	args := append([]string{"-events", events, "-tcp", "127.0.0.1:0"}, extraArgs...)
	go func() {
		done <- run(args, pr, &out, errw)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("wire listener never came up")
	}
	return addr, pw, done, &out, errw
}

// TestDaemonMaxLine is the ErrTooLong regression: an oversized stdin
// line must be skipped — not kill the feed and swallow everything after
// it, which is what bufio.Scanner did.
func TestDaemonMaxLine(t *testing.T) {
	events := writeEvents(t)
	big := `{"pad":"` + strings.Repeat("x", 1<<20+1024) + `"}`
	stdin := big + "\n" + tempLine(t, 1, 10, 35)
	insts, stderr := runDaemon(t, []string{"-events", events}, stdin)
	if !strings.Contains(stderr, "skipping line longer than") {
		t.Errorf("stderr missing too-long skip: %q", stderr)
	}
	if !strings.Contains(stderr, "ingested=1 skipped=1") {
		t.Errorf("stderr summary = %q, want ingested=1 skipped=1", stderr)
	}
	// The hot reading after the monster line still fired the detector.
	hot := 0
	for _, in := range insts {
		if in.Event == "E.hot" {
			hot++
		}
	}
	if hot != 1 {
		t.Errorf("E.hot fired %d times after oversized line, want 1", hot)
	}
}

// TestDaemonMaxLineFlag lowers the bound with -max-line.
func TestDaemonMaxLineFlag(t *testing.T) {
	events := writeEvents(t)
	big := `{"pad":"` + strings.Repeat("x", 2000) + `"}`
	stdin := big + "\n" + tempLine(t, 1, 10, 35)
	_, stderr := runDaemon(t, []string{"-events", events, "-max-line", "1024"}, stdin)
	if !strings.Contains(stderr, "skipping line longer than 1024 bytes") {
		t.Errorf("stderr = %q", stderr)
	}
	if !strings.Contains(stderr, "ingested=1 skipped=1") {
		t.Errorf("stderr summary = %q", stderr)
	}
}

// TestDaemonWireIngest is the wire end-to-end: a wireclient feeds
// observations and instances over TCP, detections fire, and the wire
// records land in the daemon's counters alongside stdin's.
func TestDaemonWireIngest(t *testing.T) {
	addr, pw, done, out, errw := startWireDaemon(t)

	c, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	// temps 22..37 step 3: three cross 30 (E.hot), the warm interval
	// opens and flushes at teardown.
	for i := 0; i < 6; i++ {
		in := tempInstance(uint64(i+1), timemodel.Tick(i*10), 22+float64(i)*3)
		if err := c.SendInstance(&in); err != nil {
			t.Fatalf("send instance %d: %v", i, err)
		}
	}
	// One raw observation for the sensor-layer event.
	o := wireclient.Observation{
		Mote: "MT1", Sensor: "SR1", Seq: 1,
		Time: timemodel.At(60), Loc: spatial.AtPoint(1, 1),
		Attrs: event.Attrs{"v": 9},
	}
	if err := c.SendObservation(&o); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if st := c.Stats(); st.Acked != 7 {
		t.Fatalf("client acked %d, want 7 (%+v)", st.Acked, st)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	if !strings.Contains(errw.String(), "ingested=7 skipped=0") {
		t.Errorf("stderr summary = %q", errw.String())
	}
	byEvent := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		in, err := event.DecodeInstance([]byte(line))
		if err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		byEvent[in.Event]++
	}
	if byEvent["E.hot"] != 3 || byEvent["E.warm"] != 1 || byEvent["E.obsHigh"] != 1 {
		t.Errorf("wire feed emitted %v, want map[E.hot:3 E.obsHigh:1 E.warm:1]", byEvent)
	}
}

// TestDaemonWireTornStream kills a wire client mid-frame: the daemon
// must reject the torn final frame without poisoning the batches it
// already acked, and keep serving new connections.
func TestDaemonWireTornStream(t *testing.T) {
	addr, pw, done, _, errw := startWireDaemon(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := frame.WriteFrame(conn, frame.AppendHello(nil)); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewReader(bufio.NewReader(conn), 0)
	welcome, _, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := frame.ParseWelcome(welcome); err != nil {
		t.Fatal(err)
	}
	// One full batch of five hot readings, acked.
	var bw frame.BatchWriter
	for i := 0; i < 5; i++ {
		in := tempInstance(uint64(i+1), timemodel.Tick(i*10), 35)
		if err := bw.AddInstance(&in); err != nil {
			t.Fatal(err)
		}
	}
	payload, _ := bw.Take(nil)
	if err := frame.WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	ack, _, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := frame.ParseAck(ack); err != nil || n != 5 {
		t.Fatalf("ack: %d, %v", n, err)
	}
	// Kill mid-stream: half a frame, then drop the connection.
	for i := 0; i < 5; i++ {
		in := tempInstance(uint64(i+6), timemodel.Tick((i+5)*10), 35)
		if err := bw.AddInstance(&in); err != nil {
			t.Fatal(err)
		}
	}
	payload, _ = bw.Take(payload[:0])
	full := frame.AppendFrame(nil, payload)
	if _, err := conn.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The handler logs the torn stream when it unwinds.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(errw.String(), "torn=true") {
		if time.Now().After(deadline) {
			t.Fatalf("torn stream never reported: %q", errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The listener survived: a fresh client still ingests.
	c, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	in := tempInstance(100, 200, 35)
	if err := c.SendInstance(&in); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	// 5 acked + 1 after the tear; the torn batch's 5 never ingested.
	if !strings.Contains(errw.String(), "ingested=6 skipped=0") {
		t.Errorf("stderr summary = %q, want ingested=6", errw.String())
	}
}

// TestDaemonWireWithWAL exercises the materialize path: with -wal-dir
// the wire server decodes eagerly so the durability layer can log
// concrete entities, and the feed replays after a restart.
func TestDaemonWireWithWAL(t *testing.T) {
	dir := t.TempDir()
	addr, pw, done, _, errw := startWireDaemon(t, "-wal-dir", dir, "-fsync", "off")

	c, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		in := tempInstance(uint64(i+1), timemodel.Tick(i*10), 35)
		if err := c.SendInstance(&in); err != nil {
			t.Fatal(err)
		}
	}
	o := wireclient.Observation{
		Mote: "MT1", Sensor: "SR1", Seq: 1,
		Time: timemodel.At(60), Loc: spatial.AtPoint(1, 1),
		Attrs: event.Attrs{"v": 9},
	}
	if err := c.SendObservation(&o); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	if !strings.Contains(errw.String(), "ingested=4 skipped=0") {
		t.Errorf("stderr summary = %q", errw.String())
	}

	// Restart over the same WAL: recovery replays the wire-fed records.
	events := writeEvents(t)
	var out strings.Builder
	errw2 := &syncBuffer{}
	if err := run([]string{"-events", events, "-wal-dir", dir, "-fsync", "off"},
		strings.NewReader(""), &out, errw2); err != nil {
		t.Fatalf("restart: %v (stderr: %s)", err, errw2.String())
	}
	if !strings.Contains(errw2.String(), "replayed=") || strings.Contains(errw2.String(), "replayed=0 ") {
		t.Errorf("restart stderr = %q, want a non-empty replay", errw2.String())
	}
}
