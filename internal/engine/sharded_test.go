package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// shardedFixture registers nEvents detectors (event E<i> consuming
// source S<i>) on a fresh sharded engine.
func shardedFixture(t testing.TB, shards, nEvents int, emit EmitFunc) *Sharded {
	s, err := NewSharded(Config{Observer: "OB", Emit: emit}, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEvents; i++ {
		if err := s.AddDetector(detect.Spec{
			EventID: fmt.Sprintf("E%d", i),
			Layer:   event.LayerSensor,
			Roles:   []detect.RoleSpec{{Name: "x", Source: fmt.Sprintf("S%d", i), Window: 4}},
			Cond:    condition.MustParse("x.v > 0"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestShardedMatchesBank proves the sharded engine emits exactly the
// instance set a single sequential bank emits for the same feed.
func TestShardedMatchesBank(t *testing.T) {
	const nEvents, nOffers = 13, 500
	loc := spatial.AtPoint(0, 0)
	feed := func(offer func(source string, ent event.Entity, conf float64, now timemodel.Tick)) {
		for i := 0; i < nOffers; i++ {
			src := fmt.Sprintf("S%d", i%nEvents)
			now := timemodel.Tick(i)
			offer(src, obsAt(src, uint64(i/nEvents+1), now, float64(i%3)), 1, now)
		}
	}

	// Reference: one sequential bank.
	ref, err := NewBank(Config{Observer: "OB"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEvents; i++ {
		if _, err := ref.AddDetector(detect.Spec{
			EventID: fmt.Sprintf("E%d", i),
			Layer:   event.LayerSensor,
			Roles:   []detect.RoleSpec{{Name: "x", Source: fmt.Sprintf("S%d", i), Window: 4}},
			Cond:    condition.MustParse("x.v > 0"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	feed(func(src string, ent event.Entity, conf float64, now timemodel.Tick) {
		for _, in := range ref.Ingest(src, ent, conf, now, loc) {
			want = append(want, in.EntityID())
		}
	})

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var mu sync.Mutex
			var got []string
			s := shardedFixture(t, shards, nEvents, func(in event.Instance) {
				mu.Lock()
				got = append(got, in.EntityID())
				mu.Unlock()
			})
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			feed(func(src string, ent event.Entity, conf float64, now timemodel.Tick) {
				if err := s.Ingest(src, ent, conf, now, loc); err != nil {
					t.Fatal(err)
				}
			})
			s.Drain()
			st := s.Stats()
			if st.Ingested != nOffers {
				t.Errorf("ingested = %d, want %d", st.Ingested, nOffers)
			}
			s.Close(timemodel.Tick(nOffers), loc)

			a, b := append([]string(nil), want...), got
			sort.Strings(a)
			sort.Strings(b)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("sharded emitted %d instances, reference %d:\n got %v\nwant %v",
					len(b), len(a), b, a)
			}
		})
	}
}

func TestShardedLifecycle(t *testing.T) {
	if _, err := NewSharded(Config{}, 4); !errors.Is(err, ErrNoObserver) {
		t.Fatalf("missing observer err = %v", err)
	}
	s := shardedFixture(t, 0, 1, nil) // shard count clamps to 1
	if s.Shards() != 1 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	loc := spatial.AtPoint(0, 0)
	if err := s.Ingest("S0", obsAt("S0", 1, 0, 1), 1, 0, loc); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("pre-start ingest err = %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); !errors.Is(err, ErrStarted) {
		t.Fatalf("double start err = %v", err)
	}
	if err := s.AddDetector(punctualSpec("E.late", "s")); !errors.Is(err, ErrStarted) {
		t.Fatalf("post-start add err = %v", err)
	}
	if got := s.Sources(); len(got) != 1 || got[0] != "S0" {
		t.Fatalf("Sources() = %v", got)
	}
	s.Close(0, loc)
	if err := s.Ingest("S0", obsAt("S0", 2, 1, 1), 1, 1, loc); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close ingest err = %v", err)
	}
	if out := s.Close(0, loc); out != nil {
		t.Fatalf("double close returned %v", out)
	}
}

// TestShardedIngestCloseRace closes the engine from a non-producer
// goroutine while the producer is mid-feed — under -race this covered
// the old unsynchronized closed/pending lifecycle, which could panic
// with a send on a closed channel. The producer must observe ErrClosed,
// never a panic or a lost error.
func TestShardedIngestCloseRace(t *testing.T) {
	loc := spatial.AtPoint(0, 0)
	for round := 0; round < 20; round++ {
		s := shardedFixture(t, 4, 8, nil)
		s.Batch = 2 // small batches force frequent channel sends
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		go func() {
			defer close(closed)
			for i := 0; ; i++ {
				src := fmt.Sprintf("S%d", i%8)
				err := s.Ingest(src, obsAt(src, uint64(i+1), timemodel.Tick(i), 1), 1, timemodel.Tick(i), loc)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}()
		s.Close(0, loc)
		<-closed
	}
}

// TestShardedDoubleCloseRace races two Close calls; exactly the normal
// teardown must happen and the loser must return nil.
func TestShardedDoubleCloseRace(t *testing.T) {
	loc := spatial.AtPoint(0, 0)
	for round := 0; round < 20; round++ {
		s := shardedFixture(t, 4, 8, nil)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			src := fmt.Sprintf("S%d", i%8)
			if err := s.Ingest(src, obsAt(src, uint64(i+1), timemodel.Tick(i), 1), 1, timemodel.Tick(i), loc); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Close(100, loc)
			}()
		}
		wg.Wait()
		if err := s.Ingest("S0", obsAt("S0", 999, 200, 1), 1, 200, loc); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close ingest err = %v", err)
		}
	}
}

// TestShardOfZeroAlloc pins the routing-path hash at zero allocations:
// the old hash/fnv.New32a allocated a hasher per Ingest.
func TestShardOfZeroAlloc(t *testing.T) {
	s := shardedFixture(t, 7, 4, nil)
	ids := []string{"E0", "E1", "a-much-longer-event-identifier", ""}
	if n := testing.AllocsPerRun(1000, func() {
		for _, id := range ids {
			_ = s.shardOf(id)
		}
	}); n != 0 {
		t.Fatalf("shardOf allocates %.1f objects/run, want 0", n)
	}
	// Distribution sanity: shardOf must still land inside the bank range.
	for i := 0; i < 100; i++ {
		if sh := s.shardOf(fmt.Sprintf("E%d", i)); sh < 0 || sh >= s.Shards() {
			t.Fatalf("shardOf out of range: %d", sh)
		}
	}
}

// BenchmarkShardOf guards the zero-allocation routing hash.
func BenchmarkShardOf(b *testing.B) {
	s := shardedFixture(b, 8, 4, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.shardOf("E.some-event-id")
	}
}

// TestShardedCloseFlushesIntervals checks open interval detections are
// emitted on Close.
func TestShardedCloseFlushesIntervals(t *testing.T) {
	var mu sync.Mutex
	var got []event.Instance
	s, err := NewSharded(Config{Observer: "OB", Emit: func(in event.Instance) {
		mu.Lock()
		got = append(got, in)
		mu.Unlock()
	}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := punctualSpec("E.i", "s")
	spec.Mode = detect.ModeInterval
	if err := s.AddDetector(spec); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	loc := spatial.AtPoint(0, 0)
	for i := 0; i < 5; i++ {
		if err := s.Ingest("s", obsAt("s", uint64(i+1), timemodel.Tick(i), 1), 1, timemodel.Tick(i), loc); err != nil {
			t.Fatal(err)
		}
	}
	flushed := s.Close(10, loc)
	if len(flushed) != 1 {
		t.Fatalf("flushed %d instances, want 1", len(flushed))
	}
	if len(got) != 1 || got[0].Event != "E.i" {
		t.Fatalf("emit hook saw %v", got)
	}
	if got[0].Occ.Start() != 0 || got[0].Occ.End() != 4 {
		t.Errorf("interval = %v, want [0,4]", got[0].Occ)
	}
}

// BenchmarkEngineShardedIngest measures sustained entity throughput of
// the sharded engine at increasing shard counts. Each offer drives a
// two-role spatio-temporal join so there is real per-offer work to
// spread over cores; on a multicore host (≥4 cores) higher shard counts
// sustain higher throughput, on a single core they tie with shards=1.
func BenchmarkEngineShardedIngest(b *testing.B) {
	const nEvents = 64
	loc := spatial.AtPoint(0, 0)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewSharded(Config{Observer: "OB"}, shards)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < nEvents; i++ {
				if err := s.AddDetector(detect.Spec{
					EventID: fmt.Sprintf("E%d", i),
					Layer:   event.LayerSensor,
					Roles: []detect.RoleSpec{
						{Name: "x", Source: fmt.Sprintf("S%d", i), Window: 8},
						{Name: "y", Source: fmt.Sprintf("T%d", i), Window: 8},
					},
					Cond: condition.MustParse("x.time before y.time and dist(x.loc, y.loc) < 2"),
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := (i / 2) % nEvents
				src := fmt.Sprintf("S%d", ev)
				if i%2 == 1 {
					src = fmt.Sprintf("T%d", ev)
				}
				now := timemodel.Tick(i)
				o := event.Observation{
					Mote: "M", Sensor: src, Seq: uint64(i),
					Time: timemodel.At(now),
					Loc:  spatial.AtPoint(float64(i%7), 0),
				}
				if err := s.Ingest(src, o, 1, now, loc); err != nil {
					b.Fatal(err)
				}
			}
			s.Drain()
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(float64(st.Emitted)/float64(b.N), "emitted/op")
			s.Close(timemodel.Tick(b.N), loc)
		})
	}
}
