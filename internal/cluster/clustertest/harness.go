// Package clustertest is the in-process multi-node harness: N cluster
// nodes, each a real engine behind a real wire listener with a real
// coordinator, plus a single-node oracle engine fed the same stream.
// The differential tests and the E17 benchmark drive it; nothing in
// the production tree imports it.
package clustertest

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	stcps "github.com/stcps/stcps"
	"github.com/stcps/stcps/internal/cluster"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/frame"
	"github.com/stcps/stcps/internal/timemodel"
)

// ErrKilled is returned by the harness fetcher for a killed node.
var ErrKilled = errors.New("clustertest: node killed")

// Config sizes a harness cluster.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Replicas is the follower count per partition (default 1).
	Replicas int
	// Cell is the partition cell size (default sub.DefaultCell).
	Cell float64
	// ProbeInterval / DownAfter / ForwardTimeout tune failure
	// detection; the defaults are scaled for tests (20ms probes).
	ProbeInterval  time.Duration
	DownAfter      int
	ForwardTimeout time.Duration
	// Observer is the shared observer id (default "cluster"). Every
	// node and the oracle must stamp the same observer for the
	// differential to be byte-identical.
	Observer string
	// OnApply, when set, observes every successful engine apply:
	// owner applies and replica applies both fire, keyed by the
	// entity id. With Replicas=1 each acked record fires exactly
	// twice (owner then follower), so the callback can pair the two
	// and time replication lag — what the E17 benchmark measures.
	// Called inside the node's ingest guard; keep it cheap.
	OnApply func(node int, key string)
}

// Node is one in-process cluster member.
type Node struct {
	Idx  int
	Eng  *stcps.Engine
	CL   *cluster.Node
	Addr string

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{} //stcps:guardedby mu
	stop   bool                  //stcps:guardedby mu
	wg     sync.WaitGroup
	killed atomic.Bool
}

// Harness is the assembled cluster plus its single-node oracle.
type Harness struct {
	Cfg    Config
	Nodes  []*Node
	Oracle *stcps.Engine
}

// New binds the wire listeners, builds the engines and cluster
// runtimes, and starts serving and probing. Register detectors with
// Detect before feeding.
func New(cfg Config) (*Harness, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("clustertest: need at least 2 nodes")
	}
	if cfg.Observer == "" {
		cfg.Observer = "cluster"
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 15 * time.Second
	}

	h := &Harness{Cfg: cfg}
	specs := make([]cluster.NodeSpec, cfg.Nodes)
	lns := make([]net.Listener, cfg.Nodes)
	for i := range specs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.Close()
			return nil, err
		}
		lns[i] = ln
		// The harness fetches pages in-process; HTTP is unused but
		// must parse.
		specs[i] = cluster.NodeSpec{Wire: ln.Addr().String(), HTTP: ln.Addr().String()}
	}

	oracle, err := stcps.NewEngine(stcps.EngineConfig{Observer: cfg.Observer, WithStore: true})
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Oracle = oracle

	for i := 0; i < cfg.Nodes; i++ {
		eng, err := stcps.NewEngine(stcps.EngineConfig{Observer: cfg.Observer, WithStore: true})
		if err != nil {
			h.Close()
			return nil, err
		}
		n := &Node{Idx: i, Eng: eng, ln: lns[i], Addr: lns[i].Addr().String(), conns: make(map[net.Conn]struct{})}
		cn, err := cluster.New(cluster.Config{
			Nodes:          specs,
			Self:           i,
			Replicas:       cfg.Replicas,
			Cell:           cfg.Cell,
			ProbeInterval:  cfg.ProbeInterval,
			DownAfter:      cfg.DownAfter,
			ForwardTimeout: cfg.ForwardTimeout,
		}, nil, cluster.Hooks{
			Guard: func(fn func() error) (bool, error) {
				n.mu.Lock()
				defer n.mu.Unlock()
				if n.stop {
					return false, nil
				}
				return true, fn()
			},
			Apply: func(source string, ent event.Entity, conf float64, now timemodel.Tick) ([]event.Instance, error) {
				out, err := eng.Ingest(source, ent, conf, now)
				if err == nil && cfg.OnApply != nil {
					cfg.OnApply(i, ent.EntityID())
				}
				return out, err
			},
			SeqOf: eng.Store().SeqOf,
			Query: eng.QueryST,
		})
		if err != nil {
			h.Close()
			return nil, err
		}
		n.CL = cn
		h.Nodes = append(h.Nodes, n)
	}
	for _, n := range h.Nodes {
		n.wg.Add(1)
		go n.serve()
		n.CL.Membership.Start()
	}
	return h, nil
}

// serve accepts wire connections into the node's coordinator.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.stop {
			n.mu.Unlock()
			conn.Close()
			continue
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
				conn.Close()
			}()
			_, _ = frame.ServeConn(conn, frame.ServerConfig{
				Offer:       func(b *frame.Batch) error { return n.CL.Coord.OfferBatch(b) },
				Materialize: true,
			})
		}()
	}
}

// Detect registers spec on every node and the oracle.
func (h *Harness) Detect(layer stcps.Layer, spec stcps.EventSpec) error {
	if err := h.Oracle.Detect(layer, spec); err != nil {
		return err
	}
	for _, n := range h.Nodes {
		if err := n.Eng.Detect(layer, spec); err != nil {
			return err
		}
	}
	return nil
}

// Router exposes a node's router (node 0 by default callers) for
// partition planning in tests.
func (h *Harness) Router(i int) *cluster.Router { return h.Nodes[i].CL.Router }

// Kill hard-stops node i: listener and live connections close without
// goodbyes, the engine guard latches shut, probes and links stop. A
// SIGKILL stand-in.
func (h *Harness) Kill(i int) {
	n := h.Nodes[i]
	if !n.killed.CompareAndSwap(false, true) {
		return
	}
	n.mu.Lock()
	n.stop = true
	n.ln.Close()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.CL.Membership.Stop()
	n.CL.Coord.Close()
}

// Killed reports whether node i was killed.
func (h *Harness) Killed(i int) bool { return h.Nodes[i].killed.Load() }

// Fetch is the in-process page fetcher for Gather: a direct LocalPage
// call, failing for killed nodes the way a dead HTTP peer would.
func (h *Harness) Fetch(node int, req cluster.PageReq) (cluster.PageResp, error) {
	n := h.Nodes[node]
	if n.killed.Load() {
		return cluster.PageResp{}, ErrKilled
	}
	return n.CL.Coord.LocalPage(req)
}

// Gather runs a scatter-gather query through node i's coordinator.
func (h *Harness) Gather(i int, spec stcps.QuerySpec) (cluster.Result, error) {
	return h.Nodes[i].CL.Coord.Gather(spec, h.Fetch)
}

// Close tears down every non-killed node.
func (h *Harness) Close() {
	for _, n := range h.Nodes {
		h.Kill(n.Idx)
	}
	for _, n := range h.Nodes {
		n.wg.Wait()
	}
}
