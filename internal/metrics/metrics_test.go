package metrics

import (
	"math"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Summary() == "" {
		t.Fatal("summary must render")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 9, 3, 7} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d", h.N())
	}
	if h.Mean() != 5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 9 {
		t.Errorf("p100 = %v", got)
	}
	want := math.Sqrt(8)
	if math.Abs(h.Stddev()-want) > 1e-9 {
		t.Errorf("Stddev = %v, want %v", h.Stddev(), want)
	}
	// Adding after sorting keeps correctness.
	h.AddTick(11)
	if h.Max() != 11 {
		t.Errorf("Max after AddTick = %v", h.Max())
	}
}

func TestResultDerivedScores(t *testing.T) {
	tests := []struct {
		name   string
		r      Result
		wantP  float64
		wantR  float64
		wantF1 float64
	}{
		{"perfect", Result{TP: 10}, 1, 1, 1},
		{"half precision", Result{TP: 5, FP: 5}, 0.5, 1, 2.0 / 3},
		{"half recall", Result{TP: 5, FN: 5}, 1, 0.5, 2.0 / 3},
		{"nothing expected or found", Result{}, 1, 1, 1},
		{"missed everything", Result{FN: 3}, 0, 0, 0},
		{"only noise", Result{FP: 3}, 0, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if p := tt.r.Precision(); math.Abs(p-tt.wantP) > 1e-9 {
				t.Errorf("P = %v, want %v", p, tt.wantP)
			}
			if r := tt.r.Recall(); math.Abs(r-tt.wantR) > 1e-9 {
				t.Errorf("R = %v, want %v", r, tt.wantR)
			}
			if f := tt.r.F1(); math.Abs(f-tt.wantF1) > 1e-9 {
				t.Errorf("F1 = %v, want %v", f, tt.wantF1)
			}
			if tt.r.String() == "" {
				t.Error("String must render")
			}
		})
	}
}

func truthEvent(id string, from, to timemodel.Tick) event.PhysicalEvent {
	return event.PhysicalEvent{ID: id, Time: timemodel.MustBetween(from, to), Loc: spatial.AtPoint(0, 0)}
}

func detection(eventID string, occ timemodel.Time) event.Instance {
	return event.Instance{
		Layer: event.LayerCyber, Observer: "CCU", Event: eventID, Seq: 1,
		Gen: occ.End() + 1, Occ: occ, Confidence: 1,
	}
}

func TestScoreMatching(t *testing.T) {
	truth := []event.PhysicalEvent{
		truthEvent("P.fire", 100, 200),
		truthEvent("P.fire", 500, 600),
	}
	detected := []event.Instance{
		detection("P.fire", timemodel.MustBetween(110, 190)), // hits first
		detection("P.fire", timemodel.At(800)),               // spurious
	}
	res := Score(truth, detected, MatchOptions{})
	if res.TP != 1 || res.FP != 1 || res.FN != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestScoreTolerance(t *testing.T) {
	truth := []event.PhysicalEvent{truthEvent("P.e", 100, 110)}
	late := detection("P.e", timemodel.At(130))
	if res := Score(truth, []event.Instance{late}, MatchOptions{}); res.TP != 0 {
		t.Fatal("late detection should miss without tolerance")
	}
	res := Score(truth, []event.Instance{late}, MatchOptions{TimeTolerance: 25})
	if res.TP != 1 || res.FP != 0 || res.FN != 0 {
		t.Fatalf("tolerant res = %+v", res)
	}
}

func TestScoreEventMapping(t *testing.T) {
	truth := []event.PhysicalEvent{truthEvent("P.fire", 100, 200)}
	d := detection("E.fireAlarm", timemodel.At(150))
	res := Score(truth, []event.Instance{d}, MatchOptions{
		MapEvent: func(id string) string {
			if id == "E.fireAlarm" {
				return "P.fire"
			}
			return id
		},
	})
	if res.TP != 1 {
		t.Fatalf("mapped res = %+v", res)
	}
}

func TestScoreEventIDFilter(t *testing.T) {
	truth := []event.PhysicalEvent{
		truthEvent("P.fire", 100, 200),
		truthEvent("P.door", 100, 200),
	}
	detected := []event.Instance{
		detection("P.fire", timemodel.At(150)),
		detection("P.door", timemodel.At(150)),
	}
	res := Score(truth, detected, MatchOptions{EventID: "P.fire"})
	if res.TP != 1 || res.FP != 0 || res.FN != 0 {
		t.Fatalf("filtered res = %+v", res)
	}
}

func TestScoreMultipleDetectionsOneTruth(t *testing.T) {
	truth := []event.PhysicalEvent{truthEvent("P.e", 100, 200)}
	detected := []event.Instance{
		detection("P.e", timemodel.At(120)),
		detection("P.e", timemodel.At(150)),
		detection("P.e", timemodel.At(180)),
	}
	res := Score(truth, detected, MatchOptions{})
	if res.TP != 1 || res.FP != 0 {
		t.Fatalf("res = %+v (duplicates must not inflate TP or FP)", res)
	}
}
