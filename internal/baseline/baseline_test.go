package baseline

import (
	"errors"
	"testing"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func prim(id string, t timemodel.Time) Prim {
	return Prim{ID: id, Time: t, Loc: spatial.AtPoint(0, 0)}
}

func TestPointEngineSeq(t *testing.T) {
	e, err := NewPointEngine(PointRule{Name: "r", Op: PSeq, A: "A", B: "B"})
	if err != nil {
		t.Fatal(err)
	}
	if out := e.Offer(prim("B", timemodel.At(5))); len(out) != 0 {
		t.Fatal("B before any A must not detect")
	}
	if out := e.Offer(prim("A", timemodel.At(10))); len(out) != 0 {
		t.Fatal("A alone must not detect")
	}
	out := e.Offer(prim("B", timemodel.At(20)))
	if len(out) != 1 {
		t.Fatalf("detections = %d, want 1", len(out))
	}
	if !out[0].Occ.Equal(timemodel.At(20)) {
		t.Errorf("occurrence = %v, want @20 (point semantics)", out[0].Occ)
	}
	if !out[0].Occ.IsPunctual() {
		t.Error("point engine must report punctual occurrences")
	}
}

func TestPointEngineSeqWindow(t *testing.T) {
	e, _ := NewPointEngine(PointRule{Name: "r", Op: PSeq, A: "A", B: "B", Window: 10})
	e.Offer(prim("A", timemodel.At(10)))
	if out := e.Offer(prim("B", timemodel.At(50))); len(out) != 0 {
		t.Fatal("out-of-window sequence must not detect")
	}
	e.Offer(prim("A", timemodel.At(60)))
	if out := e.Offer(prim("B", timemodel.At(65))); len(out) != 1 {
		t.Fatal("in-window sequence should detect")
	}
}

func TestPointEngineAndOr(t *testing.T) {
	e, _ := NewPointEngine(
		PointRule{Name: "and", Op: PAnd, A: "A", B: "B"},
		PointRule{Name: "or", Op: POr, A: "A", B: "B"},
	)
	out := e.Offer(prim("B", timemodel.At(5)))
	if len(out) != 1 || out[0].Rule != "or" {
		t.Fatalf("first B should fire only or: %+v", out)
	}
	out = e.Offer(prim("A", timemodel.At(9)))
	// A completes the And (at max(5,9)=9) and fires Or.
	if len(out) != 2 {
		t.Fatalf("detections = %d, want 2", len(out))
	}
	for _, d := range out {
		if d.Rule == "and" && !d.Occ.Equal(timemodel.At(9)) {
			t.Errorf("and occurrence = %v, want @9", d.Occ)
		}
	}
}

func TestPointEngineLossyIntervalAbstraction(t *testing.T) {
	// The point engine sees only occurrence ends: a During pattern gets
	// misread as a sequence. [20,40] during [10,60] -> ends 40, 60.
	e, _ := NewPointEngine(PointRule{Name: "seq", Op: PSeq, A: "A", B: "B"})
	e.Offer(prim("A", timemodel.MustBetween(20, 40)))
	out := e.Offer(prim("B", timemodel.MustBetween(10, 60)))
	if len(out) != 1 {
		t.Fatal("point engine abstraction should (wrongly) detect a sequence")
	}
}

func TestIntervalEngineOps(t *testing.T) {
	tests := []struct {
		name    string
		op      IntervalOp
		a, b    timemodel.Time
		want    bool
		wantOcc timemodel.Time
	}{
		{"seq holds", ISeq, timemodel.MustBetween(1, 5), timemodel.MustBetween(8, 12), true, timemodel.MustBetween(1, 12)},
		{"seq fails on overlap", ISeq, timemodel.MustBetween(1, 9), timemodel.MustBetween(8, 12), false, timemodel.Time{}},
		{"during holds", IDuring, timemodel.MustBetween(20, 40), timemodel.MustBetween(10, 60), true, timemodel.MustBetween(20, 40)},
		{"during fails", IDuring, timemodel.MustBetween(20, 70), timemodel.MustBetween(10, 60), false, timemodel.Time{}},
		{"overlap holds", IOverlap, timemodel.MustBetween(10, 30), timemodel.MustBetween(25, 50), true, timemodel.MustBetween(10, 50)},
		{"overlap fails", IOverlap, timemodel.MustBetween(10, 20), timemodel.MustBetween(25, 50), false, timemodel.Time{}},
		{"and hull", IAnd, timemodel.MustBetween(1, 5), timemodel.MustBetween(20, 30), true, timemodel.MustBetween(1, 30)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := NewIntervalEngine(IntervalRule{Name: "r", Op: tt.op, A: "A", B: "B"})
			if err != nil {
				t.Fatal(err)
			}
			e.Offer(prim("A", tt.a))
			out := e.Offer(prim("B", tt.b))
			if (len(out) > 0) != tt.want {
				t.Fatalf("detected = %v, want %v", len(out) > 0, tt.want)
			}
			if tt.want && !out[0].Occ.Equal(tt.wantOcc) {
				t.Fatalf("occurrence = %v, want %v", out[0].Occ, tt.wantOcc)
			}
		})
	}
}

func TestIntervalEngineDirectionalityBothOrders(t *testing.T) {
	// During should complete regardless of arrival order.
	e, _ := NewIntervalEngine(IntervalRule{Name: "r", Op: IDuring, A: "A", B: "B"})
	e.Offer(prim("B", timemodel.MustBetween(10, 60)))
	out := e.Offer(prim("A", timemodel.MustBetween(20, 40)))
	if len(out) != 1 {
		t.Fatal("during should detect when A arrives second")
	}
	if !out[0].Occ.Equal(timemodel.MustBetween(20, 40)) {
		t.Errorf("during occurrence = %v", out[0].Occ)
	}
}

func TestRTLMonitor(t *testing.T) {
	m, err := NewRTLMonitor(RTLConstraint{Name: "deadline", A: "A", B: "B", MinGap: 5, MaxGap: 20})
	if err != nil {
		t.Fatal(err)
	}
	m.Offer(prim("A", timemodel.At(100)))
	if out := m.Offer(prim("B", timemodel.At(102))); len(out) != 0 {
		t.Fatal("gap below MinGap must not satisfy")
	}
	m.Offer(prim("A", timemodel.At(200)))
	out := m.Offer(prim("B", timemodel.At(215)))
	if len(out) != 1 {
		t.Fatalf("in-bounds gap should satisfy: %+v", out)
	}
	m.Offer(prim("A", timemodel.At(300)))
	if out := m.Offer(prim("B", timemodel.At(400))); len(out) != 0 {
		t.Fatal("gap above MaxGap must not satisfy")
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := NewPointEngine(PointRule{}); !errors.Is(err, ErrBadRule) {
		t.Errorf("empty point rule err = %v", err)
	}
	if _, err := NewPointEngine(PointRule{Name: "r", A: "A", B: "B", Op: PointOp(9)}); !errors.Is(err, ErrBadRule) {
		t.Errorf("bad point op err = %v", err)
	}
	if _, err := NewIntervalEngine(IntervalRule{}); !errors.Is(err, ErrBadRule) {
		t.Errorf("empty interval rule err = %v", err)
	}
	if _, err := NewIntervalEngine(IntervalRule{Name: "r", A: "A", B: "B", Op: IntervalOp(9)}); !errors.Is(err, ErrBadRule) {
		t.Errorf("bad interval op err = %v", err)
	}
	if _, err := NewRTLMonitor(RTLConstraint{}); !errors.Is(err, ErrBadRule) {
		t.Errorf("empty constraint err = %v", err)
	}
	if _, err := NewRTLMonitor(RTLConstraint{Name: "r", A: "A", B: "B", MinGap: 5, MaxGap: 1}); !errors.Is(err, ErrBadRule) {
		t.Errorf("inverted gap err = %v", err)
	}
}

// TestE8CompareMatrix is the headline baseline result: only the ST-CPS
// model covers the full scenario suite, and every engine is correct on
// the classes it can express.
func TestE8CompareMatrix(t *testing.T) {
	outcomes, err := Compare(StandardScenarios())
	if err != nil {
		t.Fatal(err)
	}
	correctByEngine := make(map[EngineName]int)
	expressibleByEngine := make(map[EngineName]int)
	total := 0
	for _, o := range outcomes {
		if o.Engine == EnginePoint {
			total++
		}
		if o.Expressible {
			expressibleByEngine[o.Engine]++
			if o.Correct {
				correctByEngine[o.Engine]++
			}
		}
	}
	// Every engine must be correct on everything it expresses.
	for _, eng := range AllEngines() {
		if correctByEngine[eng] != expressibleByEngine[eng] {
			t.Errorf("%s correct on %d of %d expressible scenarios",
				eng, correctByEngine[eng], expressibleByEngine[eng])
		}
	}
	// Coverage ordering: st-cps > interval > point >= rtl.
	if expressibleByEngine[EngineSTCPS] != total {
		t.Errorf("st-cps covers %d of %d scenarios, want all", expressibleByEngine[EngineSTCPS], total)
	}
	if expressibleByEngine[EngineInterval] >= expressibleByEngine[EngineSTCPS] {
		t.Error("interval engine should cover strictly less than st-cps")
	}
	if expressibleByEngine[EnginePoint] >= expressibleByEngine[EngineInterval] {
		t.Error("point engine should cover strictly less than interval engine")
	}
	if expressibleByEngine[EngineRTL] > expressibleByEngine[EnginePoint] {
		t.Error("rtl should cover no more than the point engine")
	}
}

func TestExpressibleMatrix(t *testing.T) {
	tests := []struct {
		engine EngineName
		class  string
		want   bool
	}{
		{EnginePoint, "sequence", true},
		{EnginePoint, "during", false},
		{EnginePoint, "spatial", false},
		{EngineInterval, "during", true},
		{EngineInterval, "overlap", true},
		{EngineInterval, "spatial", false},
		{EngineRTL, "sequence", true},
		{EngineRTL, "conjunction", false},
		{EngineSTCPS, "spatio-temporal", true},
		{EngineName("nope"), "sequence", false},
	}
	for _, tt := range tests {
		if got := Expressible(tt.engine, tt.class); got != tt.want {
			t.Errorf("Expressible(%s, %s) = %v, want %v", tt.engine, tt.class, got, tt.want)
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	for _, s := range []string{PAnd.String(), POr.String(), PSeq.String(), PointOp(9).String(),
		IAnd.String(), IOr.String(), ISeq.String(), IDuring.String(), IOverlap.String(), IntervalOp(9).String()} {
		if s == "" {
			t.Fatal("operator must render")
		}
	}
}
