// Package db implements the Database Server of the CPS architecture
// (Tan, Vuran, Goddard, ICDCSW 2009, Section 3): "a distributed data
// logging service for the event instances. The event instances that
// circulate inside the CPS network are automatically transferred to the
// database server after a certain time for later retrieval."
//
// The store indexes instances three ways: an append log, a per-event
// time-ordered index (binary searched for range queries), and a uniform
// spatial grid over the estimated occurrence locations (for region
// queries). Instances are addressed by a monotonic global sequence
// number, so a retention policy (Retention) can evict from the front of
// the log while every index stays consistent. QueryST serves combined
// region×time retrieval, choosing the cheaper index from cardinality
// estimates. A linear-scan query path is kept alongside the indexes for
// the E9 experiment and as a cross-check oracle in tests.
//
// # Read/write plane split
//
// The log is stored as fixed-size immutable chunks behind an atomically
// published view, so reads do not contend with writes: a writer fills
// chunk slots above the frontier while holding mu, then publishes a new
// view (chunk directory + base + frontier) with one atomic pointer
// store. Readers load the view once and resolve seq→instance without
// any lock — an instance below the observed frontier is immutable for
// the lifetime of the view. Only the index structures (byEvent,
// byEntity, grid, obs) still require mu, and query probes against them
// are short critical sections that copy candidate sequence numbers out;
// predicate verification and result materialization run off-lock
// against the view. See docs/storage.md for the full invariants.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/segment"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// ErrNotFound is returned when an entity id cannot be resolved.
var ErrNotFound = errors.New("db: not found")

// Chunk geometry: the log is split into fixed runs of 4096 instances.
// chunkSize is a power of two and chunk boundaries stay aligned to it
// (firstSeq is always a multiple of chunkSize), so a sequence number
// resolves with a shift and a mask.
const (
	chunkBits = 12
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// chunk is one fixed-size run of the instance log. Slots below the
// published frontier are immutable until the whole chunk is retired;
// slots at or above it are owned by the writer.
type chunk struct {
	data [chunkSize]event.Instance
}

// view is one atomically published snapshot of the read plane. A single
// atomic load yields a mutually consistent (chunks, firstSeq, base,
// frontier) tuple: the writer publishes a fresh view after every
// mutation, and the atomic pointer store orders all chunk-slot writes
// before the publication (release/acquire). Views are immutable; the
// chunks they reference outlive them, so a reader may keep resolving
// sequence numbers from a stale view after eviction has moved on.
type view struct {
	// chunks[i] holds sequence numbers [firstSeq+i*chunkSize,
	// firstSeq+(i+1)*chunkSize).
	chunks []*chunk
	// firstSeq is the sequence number of chunks[0]'s slot 0 — always a
	// multiple of chunkSize. After a cold attach it may sit below
	// spilled: the slots in [firstSeq, spilled) are phantom (their
	// history lives in segments) and are never resolved.
	firstSeq uint64
	// base is the oldest live sequence number; seqs in [firstSeq, base)
	// are evicted but not yet retired with their chunk.
	base uint64
	// frontier is the next sequence number to be assigned; live
	// instances occupy [base, frontier).
	frontier uint64
	// spilled marks the cold/chunk boundary of the unified cursor
	// space: seqs below it resolve through cold's segments, seqs in
	// [spilled, frontier) through the chunks. firstSeq <= spilled <=
	// base always. Without a cold tier it tracks firstSeq.
	spilled uint64
	// cold is the attached segment directory; nil when the store is
	// RAM-only. Immutable once attached, so readers use it without mu.
	cold *segment.Dir
}

// at resolves a sequence number in [firstSeq, frontier) to its
// instance. Lock-free: the slot is immutable below the view's frontier.
//
//stcps:hotpath
func (v *view) at(seq uint64) *event.Instance {
	return &v.chunks[(seq-v.firstSeq)>>chunkBits].data[seq&chunkMask]
}

// live is the number of live instances in the view.
//
//stcps:hotpath
func (v *view) live() int { return int(v.frontier - v.base) }

// Retention bounds the store's memory. The zero value retains
// everything.
type Retention struct {
	// MaxInstances caps the number of live instances; the oldest
	// arrivals are evicted first (0 = unlimited).
	MaxInstances int
	// MaxAge evicts instances whose generation time has fallen more
	// than MaxAge ticks behind the newest logged generation time
	// (0 = unlimited).
	MaxAge timemodel.Tick
}

// Stats summarizes the store's contents for monitoring endpoints.
type Stats struct {
	// Instances is the live instance count.
	Instances int `json:"instances"`
	// Observations is the logged raw-observation count.
	Observations int `json:"observations"`
	// Events is the number of distinct event ids with live instances.
	Events int `json:"events"`
	// Evicted counts instances dropped by the retention policy.
	Evicted uint64 `json:"evicted"`
	// MaxGen is the newest generation time logged (the retention clock).
	MaxGen timemodel.Tick `json:"maxGen"`
	// Chunks is the length of the published chunk directory.
	Chunks int `json:"chunks"`
	// StaleIndexEntries counts evicted sequence numbers still present in
	// the time index, awaiting the next amortized compaction sweep.
	StaleIndexEntries int `json:"staleIndexEntries"`
	// Reads counts QueryST pages served from the lock-free read plane.
	Reads uint64 `json:"reads"`
	// ReadLocks counts short index-probe lock acquisitions taken by
	// those reads — at most one per page, zero on the sequential path.
	ReadLocks uint64 `json:"readLocks"`
	// Materialized counts instances copied out of the immutable chunks
	// without holding any lock.
	Materialized uint64 `json:"materialized"`
	// LockedReads counts pages served by QuerySTLocked, the retained
	// monolithic-lock reference path.
	LockedReads uint64 `json:"lockedReads"`
	// SpilledSeq is the cold/chunk boundary of the unified cursor
	// space: history below it lives in on-disk segments.
	SpilledSeq uint64 `json:"spilledSeq"`
	// ColdReads counts QueryST pages that consulted the cold tier.
	ColdReads uint64 `json:"coldReads"`
	// SpillErrs counts failed spill attempts. A failed spill is retried
	// at the next compaction; until it succeeds the affected chunks
	// stay resident, so memory grows but no history is lost.
	SpillErrs uint64 `json:"spillErrs"`
	// Cold is the attached segment directory's accounting; nil when the
	// store is RAM-only.
	Cold *segment.Stats `json:"cold,omitempty"`
}

// Store is the event-instance database. It is safe for concurrent use.
//
// Live instances are addressed by a global sequence number and stored
// in immutable fixed-size chunks published through an atomic view (see
// the package comment). Eviction advances base, so sequence numbers
// (and query cursors built from them) stay valid across evictions — an
// evicted instance simply stops resolving. mu guards the write plane
// and the index structures; the published view is read without it.
type Store struct {
	mu sync.RWMutex
	// pub is the atomically published read plane. The writer stores a
	// fresh view after every mutation while holding mu; readers load it
	// without any lock.
	pub atomic.Pointer[view]

	// Write plane: the canonical (newest) copies of the view fields.
	chunks   []*chunk //stcps:guardedby mu -- canonical chunk directory
	firstSeq uint64   //stcps:guardedby mu -- seq of chunks[0] slot 0
	base     uint64   //stcps:guardedby mu -- oldest live seq
	frontier uint64   //stcps:guardedby mu -- next seq to assign

	// Cold tier: evicted history spilled to immutable on-disk segments
	// at chunk retirement. spilled is the write-plane copy of the view
	// field; cold is set once by AttachCold before concurrent use.
	cold    *segment.Dir //stcps:guardedby mu -- write side; readers use the view's copy
	spilled uint64       //stcps:guardedby mu

	byEvent  map[string][]uint64          //stcps:guardedby mu -- event id -> seqs, Occ.Start-ordered, may contain stale (< base) entries
	liveEv   map[string]int               //stcps:guardedby mu -- event id -> live instance count
	byEntity map[string]uint64            //stcps:guardedby mu -- entity id -> seq (live only)
	grid     *spatial.Grid                //stcps:guardedby mu
	obs      map[string]event.Observation //stcps:guardedby mu -- logged observations by id
	ret      Retention
	evicted  uint64 //stcps:guardedby mu
	// stale counts byEvent entries pointing below base: eviction only
	// counts them, and a periodic compaction sweep reclaims them in
	// bulk — amortized O(1) per evicted instance.
	stale  int            //stcps:guardedby mu
	maxGen timemodel.Tick //stcps:guardedby mu
	// maxDur is the longest occurrence duration ever logged per event —
	// the window lower bound for the time index: every instance
	// intersecting [from, to] has Occ.Start >= from-maxDur. Grow-only
	// (eviction leaves it as a safe over-approximation).
	maxDur map[string]timemodel.Tick //stcps:guardedby mu

	// Read-path counters (atomic: bumped by lock-free readers).
	reads        atomic.Uint64
	readLocks    atomic.Uint64
	materialized atomic.Uint64
	lockedReads  atomic.Uint64
	coldReads    atomic.Uint64
	spillErrs    atomic.Uint64
}

// DefaultGridCell is the spatial index cell size.
const DefaultGridCell = 16.0

// New creates an empty store. cellSize <= 0 selects DefaultGridCell.
func New(cellSize float64) (*Store, error) {
	if cellSize <= 0 {
		cellSize = DefaultGridCell
	}
	g, err := spatial.NewGrid(cellSize)
	if err != nil {
		return nil, fmt.Errorf("db: %w", err)
	}
	s := &Store{
		byEvent:  make(map[string][]uint64),
		liveEv:   make(map[string]int),
		byEntity: make(map[string]uint64),
		grid:     g,
		obs:      make(map[string]event.Observation),
		maxDur:   make(map[string]timemodel.Tick),
	}
	s.pub.Store(&view{})
	return s, nil
}

// loadView returns the current published read plane. Lock-free; under
// mu (either mode) it is exact, elsewhere it may trail the write plane
// by in-flight mutations.
//
//stcps:hotpath
func (s *Store) loadView() *view { return s.pub.Load() }

// publishLocked publishes the write plane as the new read plane. Every
// mutation of chunks/base/frontier must publish before releasing mu.
//
//stcps:holds mu
func (s *Store) publishLocked() {
	s.pub.Store(&view{
		chunks: s.chunks, firstSeq: s.firstSeq, base: s.base, frontier: s.frontier,
		spilled: s.spilled, cold: s.cold,
	})
}

// at resolves a sequence number in [firstSeq, frontier) against the
// write plane.
//
//stcps:holds mu
func (s *Store) at(seq uint64) *event.Instance {
	return &s.chunks[(seq-s.firstSeq)>>chunkBits].data[seq&chunkMask]
}

// SetRetention installs (or replaces) the eviction policy and enforces
// it immediately.
func (s *Store) SetRetention(r Retention) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ret = r
	s.enforceRetentionLocked()
	s.publishLocked()
}

// Retention returns the active eviction policy.
func (s *Store) Retention() Retention {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ret
}

// Stats returns a snapshot of the store's contents.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Instances:         int(s.frontier - s.base),
		Observations:      len(s.obs),
		Events:            len(s.byEvent),
		Evicted:           s.evicted,
		MaxGen:            s.maxGen,
		Chunks:            len(s.chunks),
		StaleIndexEntries: s.stale,
		Reads:             s.reads.Load(),
		ReadLocks:         s.readLocks.Load(),
		Materialized:      s.materialized.Load(),
		LockedReads:       s.lockedReads.Load(),
		SpilledSeq:        s.spilled,
		ColdReads:         s.coldReads.Load(),
		SpillErrs:         s.spillErrs.Load(),
	}
	if s.cold != nil {
		cs := s.cold.Stats()
		st.Cold = &cs
	}
	return st
}

// Log appends an instance. Invalid instances are rejected; duplicate
// entity ids (same observer, event, seq) are idempotently ignored.
func (s *Store) Log(in event.Instance) error {
	_, _, err := s.LogSeq(in)
	return err
}

// LogSeq appends an instance like Log and additionally returns the
// global sequence number assigned to it — the query cursor addressing
// it, which the subscription subsystem stamps on live deliveries so a
// reconnecting subscriber can resume. fresh reports whether the
// instance was newly logged; a duplicate entity id returns its existing
// sequence number with fresh=false.
func (s *Store) LogSeq(in event.Instance) (seq uint64, fresh bool, err error) {
	if err := in.Validate(); err != nil {
		return 0, false, fmt.Errorf("db: log: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq, fresh = s.logOneLocked(&in)
	if fresh {
		s.enforceRetentionLocked()
		s.publishLocked()
	}
	return seq, fresh, nil
}

// LogBatch appends a batch of instances under a single lock
// acquisition, retention pass and frontier publication — the amortized
// write path fed by the wire-protocol batch decoder and the engine's
// batched emission hook. seqs[i] and fresh[i] mirror LogSeq's results
// for ins[i]. The batch is atomic with respect to validation: an
// invalid instance fails the whole batch before any mutation.
func (s *Store) LogBatch(ins []event.Instance) (seqs []uint64, fresh []bool, err error) {
	for i := range ins {
		if err := ins[i].Validate(); err != nil {
			return nil, nil, fmt.Errorf("db: log[%d]: %w", i, err)
		}
	}
	if len(ins) == 0 {
		return nil, nil, nil
	}
	seqs = make([]uint64, len(ins))
	fresh = make([]bool, len(ins))
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for i := range ins {
		seqs[i], fresh[i] = s.logOneLocked(&ins[i])
		changed = changed || fresh[i]
	}
	if changed {
		s.enforceRetentionLocked()
		s.publishLocked()
	}
	return seqs, fresh, nil
}

// logOneLocked appends one pre-validated instance to the write plane
// and every index, without enforcing retention or publishing — the
// shared core of LogSeq and LogBatch.
//
//stcps:holds mu
func (s *Store) logOneLocked(in *event.Instance) (seq uint64, fresh bool) {
	id := in.EntityID()
	if prev, dup := s.byEntity[id]; dup {
		return prev, false
	}
	seq = s.frontier
	ci := (seq - s.firstSeq) >> chunkBits
	if int(ci) == len(s.chunks) {
		s.chunks = append(s.chunks, &chunk{})
	}
	s.chunks[ci].data[seq&chunkMask] = *in
	s.frontier = seq + 1
	s.byEntity[id] = seq
	s.liveEv[in.Event]++

	lst := s.byEvent[in.Event]
	// Insert keeping Occ.Start order (instances usually arrive almost in
	// order, so the insertion point is near the end).
	pos := sort.Search(len(lst), func(i int) bool {
		return s.at(lst[i]).Occ.Start() > in.Occ.Start()
	})
	lst = append(lst, 0)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = seq
	s.byEvent[in.Event] = lst

	s.grid.Insert(id, in.Loc)
	if dur := in.Occ.End() - in.Occ.Start(); dur > s.maxDur[in.Event] {
		s.maxDur[in.Event] = dur
	}
	if in.Gen > s.maxGen {
		s.maxGen = in.Gen
	}
	return seq, true
}

// SeqOf resolves an entity id to its global sequence number, reporting
// false when the entity is not live (never logged, or evicted).
func (s *Store) SeqOf(entityID string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seq, ok := s.byEntity[entityID]
	return seq, ok
}

// enforceRetentionLocked evicts from the front of the log until the
// retention bounds hold, then compacts the stale index entries and
// retired chunks the evictions left behind. Callers hold mu.
//
//stcps:holds mu
func (s *Store) enforceRetentionLocked() {
	if s.ret.MaxAge > 0 {
		for s.frontier > s.base && s.at(s.base).Gen < s.maxGen-s.ret.MaxAge {
			s.evictFrontLocked()
		}
	}
	if s.ret.MaxInstances > 0 {
		for s.frontier-s.base > uint64(s.ret.MaxInstances) {
			s.evictFrontLocked()
		}
	}
	s.compactLocked()
}

// evictFrontLocked drops the oldest live instance from the entity and
// grid indexes and advances base. Its time-index entry merely goes
// stale (probes skip sequence numbers below base) and its chunk slot
// stays in place until the whole chunk retires — O(1) per instance,
// with the deferred reclamation amortized by compactLocked. When the
// instance was its event's last live one, the event's whole index list
// (all stale by definition) is dropped immediately so the event id
// disappears from EventIDs/Stats exactly as it always has.
//
//stcps:holds mu
func (s *Store) evictFrontLocked() {
	in := s.at(s.base)
	id := in.EntityID()
	delete(s.byEntity, id)
	s.grid.Remove(id)
	if n := s.liveEv[in.Event] - 1; n == 0 {
		s.stale -= len(s.byEvent[in.Event]) - 1
		delete(s.byEvent, in.Event)
		delete(s.liveEv, in.Event)
	} else {
		s.liveEv[in.Event] = n
		s.stale++
	}
	s.base++
	s.evicted++
}

// compactLocked reclaims what eviction deferred: it sweeps stale
// entries out of the time index and retires chunks that fell entirely
// below base. The sweep runs when a whole chunk is retirable or the
// stale count has caught up with the live entity count (with a
// chunkSize floor so small stores don't sweep constantly), so its
// O(index entries) cost amortizes to O(1) per evicted instance. Chunk
// retirement rebuilds the directory into a fresh slice — published
// views keep the old one alive, so concurrent readers are unaffected —
// and reclaims instance memory a chunk at a time: up to chunkSize-1
// evicted instances linger in the front partial chunk.
//
//stcps:holds mu
func (s *Store) compactLocked() {
	retirable := int((s.base - s.firstSeq) >> chunkBits)
	// With a cold tier, retiring a chunk first spills its evicted
	// instances to a segment: retirement is the spill point, so cold
	// coverage stays contiguous with the chunk range. A failed spill
	// skips retirement — the chunks stay resident and readable, and the
	// spill is retried at the next compaction.
	if retirable > 0 && s.cold != nil && s.spillLocked(s.firstSeq+uint64(retirable)<<chunkBits) != nil {
		retirable = 0
	}
	if retirable == 0 && (s.stale < chunkSize || s.stale < len(s.byEntity)) {
		return
	}
	if s.stale > 0 {
		for ev, lst := range s.byEvent {
			keep := lst[:0]
			for _, seq := range lst {
				if seq >= s.base {
					keep = append(keep, seq)
				}
			}
			s.byEvent[ev] = keep
		}
		s.stale = 0
	}
	if retirable > 0 {
		live := make([]*chunk, len(s.chunks)-retirable)
		copy(live, s.chunks[retirable:])
		s.chunks = live
		s.firstSeq += uint64(retirable) << chunkBits
		if s.cold == nil {
			s.spilled = s.firstSeq
		}
	}
}

// spillLocked appends the evicted instances in [s.spilled, upTo) to the
// cold tier and advances the spill marker. A failed segment write is
// counted and returned; the caller then keeps the chunks resident. The
// instance copies are taken under mu, but the file I/O inside Dir.Spill
// synchronizes only on the Dir's own lock — concurrent cold scans are
// never blocked by it.
//
//stcps:holds mu
func (s *Store) spillLocked(upTo uint64) error {
	if upTo <= s.spilled {
		return nil
	}
	ins := make([]event.Instance, upTo-s.spilled)
	for i := range ins {
		ins[i] = *s.at(s.spilled + uint64(i))
	}
	if err := s.cold.Spill(s.spilled, ins); err != nil {
		s.spillErrs.Add(1)
		return err
	}
	s.spilled = upTo
	return nil
}

// AttachCold attaches an opened segment directory as the store's cold
// tier. It must be called on an empty store, before any Log: when the
// directory already covers [coldBase, end) from an earlier run, the
// store resumes the unified cursor space at end — newly logged
// instances take sequence numbers directly above the recovered cold
// history, so cursors address one contiguous range across tiers.
//
// Lifecycle: the caller (the engine) owns the Dir and closes it after
// the store is quiesced. On a durable engine, call Dir.DiscardAfter
// with the recovered snapshot's WAL sequence before attaching, so
// segments spilled after the WAL coverage (whose instances re-enter hot
// via replay) are dropped instead of duplicated.
func (s *Store) AttachCold(d *segment.Dir) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cold != nil {
		return errors.New("db: cold tier already attached")
	}
	if s.frontier != 0 || s.firstSeq != 0 {
		return errors.New("db: cold tier must be attached to an empty store")
	}
	s.cold = d
	if _, end, ok := d.Bounds(); ok {
		// Align the chunk origin below the resume point; the phantom
		// slots in [firstSeq, spilled) are never resolved (reads below
		// spilled go to the segments).
		s.firstSeq = end &^ chunkMask
		s.base, s.frontier, s.spilled = end, end, end
	}
	s.publishLocked()
	return nil
}

// FlushCold spills every evicted-but-unspilled instance ([spilled,
// base), the partial-chunk backlog retirement hasn't reached) to the
// cold tier. Called before a snapshot or shutdown so a graceful stop
// loses no history. No-op without a cold tier.
func (s *Store) FlushCold() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cold == nil || s.base <= s.spilled {
		return nil
	}
	if err := s.spillLocked(s.base); err != nil {
		return fmt.Errorf("db: flush cold: %w", err)
	}
	s.publishLocked()
	return nil
}

// LogObservation records a raw physical observation for provenance
// resolution.
func (s *Store) LogObservation(o event.Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs[o.EntityID()] = o
}

// Len returns the number of live instances.
func (s *Store) Len() int {
	return s.loadView().live()
}

// All returns a copy of the live instance log in arrival order. It
// reads the published view without locking.
func (s *Store) All() []event.Instance {
	v := s.loadView()
	out := make([]event.Instance, 0, v.live())
	for seq := v.base; seq < v.frontier; seq++ {
		out = append(out, *v.at(seq))
	}
	return out
}

// Get resolves an instance by its entity id.
func (s *Store) Get(entityID string) (event.Instance, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seq, ok := s.byEntity[entityID]
	if !ok {
		return event.Instance{}, fmt.Errorf("%q: %w", entityID, ErrNotFound)
	}
	return *s.at(seq), nil
}

// QueryTime returns instances of eventID whose estimated occurrence
// intersects [from, to], ordered by occurrence start. An empty eventID
// matches every event (via scan). The index probe is a short critical
// section; materialization runs lock-free against the published view.
func (s *Store) QueryTime(eventID string, from, to timemodel.Tick) []event.Instance {
	if to < from {
		return nil
	}
	if eventID == "" {
		v := s.loadView()
		return scanTimeView(v, "", from, to)
	}
	s.mu.RLock()
	v := s.loadView()
	lst, lo, hi := s.timeWindowLocked(eventID, from, to)
	cand := make([]uint64, 0, hi-lo)
	for _, seq := range lst[lo:hi] {
		if seq >= v.base {
			cand = append(cand, seq)
		}
	}
	s.mu.RUnlock()
	var out []event.Instance
	for _, seq := range cand {
		if v.at(seq).Occ.End() >= from {
			out = append(out, *v.at(seq))
		}
	}
	return out
}

// timeWindowLocked returns the slice [lo, hi) of the event's
// start-ordered index that can intersect [from, to]: starts <= to, and
// starts >= from minus the event's longest logged duration (an interval
// reaching into the window cannot have started earlier than that). The
// window may include stale (evicted) sequence numbers; callers filter
// against the view's base. Callers hold mu.
//
//stcps:holds mu
func (s *Store) timeWindowLocked(eventID string, from, to timemodel.Tick) (lst []uint64, lo, hi int) {
	lst = s.byEvent[eventID]
	if lst == nil {
		lst = []uint64{}
	}
	hi = sort.Search(len(lst), func(i int) bool {
		return s.at(lst[i]).Occ.Start() > to
	})
	// Saturate the subtraction: from can be MinInt64 (an open-ended
	// window), where subtracting the duration would wrap positive and
	// empty the window.
	floor := from - s.maxDur[eventID]
	if floor > from {
		lo = 0
		return lst, lo, hi
	}
	lo = sort.Search(hi, func(i int) bool {
		return s.at(lst[i]).Occ.Start() >= floor
	})
	return lst, lo, hi
}

// ScanTime is the unindexed equivalent of QueryTime, retained for the E9
// index-versus-scan experiment and as a testing oracle. It scans the
// published view without locking.
func (s *Store) ScanTime(eventID string, from, to timemodel.Tick) []event.Instance {
	if to < from {
		return nil
	}
	return scanTimeView(s.loadView(), eventID, from, to)
}

func scanTimeView(v *view, eventID string, from, to timemodel.Tick) []event.Instance {
	var out []event.Instance
	for seq := v.base; seq < v.frontier; seq++ {
		in := v.at(seq)
		if eventID != "" && in.Event != eventID {
			continue
		}
		if in.Occ.Start() <= to && in.Occ.End() >= from {
			out = append(out, *in)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Occ.Start() < out[j].Occ.Start()
	})
	return out
}

// QueryRegion returns instances whose estimated occurrence location is
// Joint with the region, in arrival order. The grid probe is a short
// critical section; materialization runs lock-free.
func (s *Store) QueryRegion(region spatial.Location) []event.Instance {
	s.mu.RLock()
	v := s.loadView()
	ids := s.grid.QueryRegion(region)
	seqs := make([]uint64, 0, len(ids))
	for _, id := range ids {
		if seq, ok := s.byEntity[id]; ok {
			seqs = append(seqs, seq)
		}
	}
	s.mu.RUnlock()
	sortSeqs(seqs)
	out := make([]event.Instance, len(seqs))
	for i, seq := range seqs {
		out[i] = *v.at(seq)
	}
	return out
}

// ScanRegion is the unindexed equivalent of QueryRegion (E9 experiment /
// testing oracle). It scans the published view without locking.
func (s *Store) ScanRegion(region spatial.Location) []event.Instance {
	v := s.loadView()
	var out []event.Instance
	for seq := v.base; seq < v.frontier; seq++ {
		in := v.at(seq)
		if spatial.OpJoint.Apply(in.Loc, region) {
			out = append(out, *in)
		}
	}
	return out
}

// Lineage resolves the provenance chain of an entity: the transitive
// closure of Inputs, depth-first, deduplicated, starting from (and
// including) entityID. Unresolvable input ids (e.g. observations that
// were never logged, or instances evicted by retention) are included as
// leaves — the chain back to the original physical observation stays
// intact exactly as the paper requires.
func (s *Store) Lineage(entityID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.byEntity[entityID]; !ok {
		if _, ok := s.obs[entityID]; !ok {
			return nil, fmt.Errorf("%q: %w", entityID, ErrNotFound)
		}
	}
	seen := make(map[string]bool)
	var out []string
	var walk func(id string)
	walk = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		out = append(out, id)
		if seq, ok := s.byEntity[id]; ok { //stcps:ignore guardedby synchronous closure; the enclosing query holds mu
			for _, inp := range s.at(seq).Inputs {
				walk(inp)
			}
		}
	}
	walk(entityID)
	return out, nil
}

// EventIDs lists the distinct event ids with live instances, sorted.
func (s *Store) EventIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byEvent))
	for id := range s.byEvent {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
