// Package sub implements standing subscriptions over the stream of
// emitted event instances — the push half of the paper's architecture.
// The CPS hierarchy is push-driven (motes and sinks forward composite
// event instances upward the moment they are detected); this package
// extends the push to external consumers: a subscription names an event
// type, a spatial region, a time window and an optional compiled
// condition, and every emitted instance matching it is delivered to the
// subscriber's bounded buffer the moment it is emitted.
//
// Matching is indexed so its cost tracks the number of *matching*
// subscriptions, not the number of *registered* ones: subscriptions are
// bucketed by event type and, within a bucket, by the coarse grid cells
// their region overlaps (the same uniform-cell scheme as spatial.Grid,
// reimplemented here so the probe path stays allocation-free). An
// emitted instance probes exactly one event bucket (plus the any-event
// bucket) and the cells its occurrence location overlaps; compiled
// predicates are evaluated only on those index hits.
//
// Each subscriber owns a bounded ring buffer with drop-oldest
// backpressure and per-subscriber delivery/drop counters. Every
// delivery carries the store cursor (global db sequence number) of the
// instance, so a reconnecting subscriber can resume gaplessly: a new
// subscription created with SubscribeFrom replays the missed instances
// from the store by cursor, then atomically splices onto the live feed,
// deduplicating the seam by instance content key — the same identity
// key the WAL recovery path uses (event.Instance.ContentKey).
package sub

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Subscription errors.
var (
	// ErrClosed is returned when receiving from (or subscribing on) a
	// closed subscription or matcher.
	ErrClosed = errors.New("sub: subscription closed")
	// ErrNoStore is returned when a catch-up subscription is requested
	// without a store to replay from.
	ErrNoStore = errors.New("sub: catch-up replay needs a store")
)

// Defaults for the zero Config.
const (
	// DefaultCell is the coarse index cell size. It is deliberately
	// larger than the store's spatial-index cell (subscription regions
	// are typically much larger than instance footprints).
	DefaultCell = 64.0
	// DefaultBuffer is the per-subscriber ring capacity.
	DefaultBuffer = 256
	// DefaultReplayPage is the catch-up replay page size.
	DefaultReplayPage = 512
	// DefaultMaxRegionCells caps the cells a single subscription region
	// may occupy in the index; larger regions fall back to the bucket's
	// unregioned list (still verified exactly at match time).
	DefaultMaxRegionCells = 4096
	// DefaultSeamCap bounds the content keys retained for seam
	// deduplication after a catch-up replay.
	DefaultSeamCap = 1 << 20
	// CondRole is the role name a subscription condition binds the
	// matched instance to: "e.temp > 30 and e.time after @100".
	CondRole = "e"
)

// Config parameterizes a Matcher. Zero fields select the defaults.
type Config struct {
	// Cell is the coarse grid cell size of the subscription index.
	Cell float64
	// Buffer is the default per-subscriber ring capacity.
	Buffer int
	// ReplayPage is the catch-up replay page size.
	ReplayPage int
	// MaxRegionCells caps the index cells per subscription region.
	MaxRegionCells int
	// SeamCap bounds the retained seam-dedup keys per catch-up replay.
	SeamCap int
}

func (c *Config) normalize() {
	if c.Cell <= 0 {
		c.Cell = DefaultCell
	}
	if c.Buffer <= 0 {
		c.Buffer = DefaultBuffer
	}
	if c.ReplayPage <= 0 {
		c.ReplayPage = DefaultReplayPage
	}
	if c.MaxRegionCells <= 0 {
		c.MaxRegionCells = DefaultMaxRegionCells
	}
	if c.SeamCap <= 0 {
		c.SeamCap = DefaultSeamCap
	}
}

// Spec declares what a subscription matches. Semantics mirror db.Query
// exactly — event id equality (empty matches every event), occurrence
// location Joint with Region (nil matches everywhere), occurrence time
// intersecting [From, To] — so a subscriber's stream agrees with a
// QueryST over the same predicates. Where adds a compiled condition
// over the matched instance, which QueryST has no equivalent for.
type Spec struct {
	// Event filters to one event id; empty matches every event.
	Event string
	// Region, when non-nil, keeps instances whose estimated occurrence
	// location is Joint with it.
	Region *spatial.Location
	// HasTime gates the temporal predicate: the estimated occurrence
	// must intersect [From, To].
	HasTime bool
	// From and To bound the occurrence window (inclusive) when HasTime.
	From, To timemodel.Tick
	// Where is an optional condition over the matched instance, bound
	// under the role CondRole ("e"), e.g. "e.temp > 30". Instances for
	// which it errors (missing attribute) are treated as non-matching
	// and counted in CondErrors.
	Where string
	// Buffer overrides the matcher's default ring capacity when > 0.
	Buffer int
}

// Delivery is one instance handed to a subscriber.
type Delivery struct {
	// Inst is the delivered instance.
	Inst event.Instance
	// Cursor is the store sequence number of the instance — pass it to
	// SubscribeFrom after a disconnect to resume without gaps. Only
	// meaningful when HasCursor.
	Cursor uint64
	// HasCursor reports whether the instance is addressable in a store
	// (false on store-less engines, where catch-up is unavailable).
	HasCursor bool
	// Replayed marks deliveries produced by the catch-up replay rather
	// than the live push.
	Replayed bool
}

// Stats aggregates the matcher's counters.
type Stats struct {
	// Subscriptions is the live subscription count.
	Subscriptions int `json:"subscriptions"`
	// Published counts instances offered to the matcher.
	Published uint64 `json:"published"`
	// Matched counts (instance, subscription) matches.
	Matched uint64 `json:"matched"`
	// Delivered sums the per-subscriber delivery counters (live pushes
	// into rings plus catch-up replays), including closed subscribers.
	Delivered uint64 `json:"delivered"`
	// Dropped sums the per-subscriber drop-oldest evictions.
	Dropped uint64 `json:"dropped"`
	// Replayed sums the catch-up replay deliveries.
	Replayed uint64 `json:"replayed"`
	// CondErrors counts condition evaluations that errored.
	CondErrors uint64 `json:"condErrors"`
	// SeamDropped counts live deliveries discarded as duplicates of
	// catch-up replays at the splice seam.
	SeamDropped uint64 `json:"seamDropped"`
}

// SubStats reports one subscription's state and counters.
type SubStats struct {
	// ID is the subscription identifier.
	ID uint64 `json:"id"`
	// Event is the subscribed event id ("" = all).
	Event string `json:"event,omitempty"`
	// HasRegion reports whether the subscription is region-scoped.
	HasRegion bool `json:"hasRegion"`
	// Where is the condition text, if any.
	Where string `json:"where,omitempty"`
	// Buffered is the current ring occupancy.
	Buffered int `json:"buffered"`
	// Capacity is the ring capacity.
	Capacity int `json:"capacity"`
	// CatchingUp reports whether the catch-up replay is still running.
	CatchingUp bool `json:"catchingUp"`
	// Delivered counts deliveries handed to this subscriber.
	Delivered uint64 `json:"delivered"`
	// Dropped counts ring evictions (drop-oldest backpressure).
	Dropped uint64 `json:"dropped"`
	// Replayed counts catch-up replay deliveries.
	Replayed uint64 `json:"replayed"`
	// CondErrors counts condition evaluations that errored.
	CondErrors uint64 `json:"condErrors"`
	// SeamDropped counts seam-dedup discards.
	SeamDropped uint64 `json:"seamDropped"`
}

// cellKey addresses one coarse index cell.
type cellKey struct{ cx, cy int }

// bucket indexes one event id's subscriptions: by the cells their
// regions overlap, plus the unregioned (or too-large-region) list.
type bucket struct {
	cells      map[cellKey][]*Subscription
	unregioned []*Subscription
}

// Matcher is the subscription index. Publish may be called concurrently
// (the emission hooks of a sharded engine run on worker goroutines);
// Subscribe/Unsubscribe may be called at any time.
type Matcher struct {
	cfg Config

	mu      sync.RWMutex
	nextID  uint64                   //stcps:guardedby mu
	subs    map[uint64]*Subscription //stcps:guardedby mu
	byEvent map[string]*bucket       //stcps:guardedby mu

	// count mirrors len(subs) so Publish can skip the read lock when no
	// one is subscribed — emission hot paths pay one atomic load.
	count atomic.Int64

	published atomic.Uint64
	matched   atomic.Uint64
	condErrs  atomic.Uint64

	// retired accumulates the delivery counters of closed subscriptions
	// so Stats stays monotonic across unsubscribes.
	retired Stats //stcps:guardedby mu
}

// NewMatcher creates an empty subscription matcher.
func NewMatcher(cfg Config) *Matcher {
	cfg.normalize()
	return &Matcher{
		cfg:     cfg,
		subs:    make(map[uint64]*Subscription),
		byEvent: make(map[string]*bucket),
	}
}

// compileWhere compiles a Spec's condition against the single CondRole
// slot. Empty text compiles to nil.
func compileWhere(text string) (*condition.Compiled, error) {
	if text == "" {
		return nil, nil
	}
	expr, err := condition.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("sub: condition: %w", err)
	}
	c, err := condition.Compile(expr, condition.NewSlotMap([]string{CondRole}))
	if err != nil {
		return nil, fmt.Errorf("sub: condition (the instance is bound as %q): %w", CondRole, err)
	}
	return c, nil
}

// Subscribe registers a live-push subscription: deliveries start with
// the next matching emission. Use SubscribeFrom to also replay history.
func (m *Matcher) Subscribe(spec Spec) (*Subscription, error) {
	cond, err := compileWhere(spec.Where)
	if err != nil {
		return nil, err
	}
	s := m.newSub(spec, cond, false)
	m.register(s)
	return s, nil
}

// newSub builds an unregistered subscription.
func (m *Matcher) newSub(spec Spec, cond *condition.Compiled, catchup bool) *Subscription {
	capacity := spec.Buffer
	if capacity <= 0 {
		capacity = m.cfg.Buffer
	}
	return &Subscription{
		m:       m,
		spec:    spec,
		cond:    cond,
		binding: make([]event.Entity, 1),
		cap:     capacity,
		catchup: catchup,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// register inserts a subscription into the index.
func (m *Matcher) register(s *Subscription) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	s.id = m.nextID
	m.subs[s.id] = s
	b := m.byEvent[s.spec.Event]
	if b == nil {
		b = &bucket{cells: make(map[cellKey][]*Subscription)}
		m.byEvent[s.spec.Event] = b
	}
	s.cellRefs = m.regionCells(s.spec.Region)
	if s.cellRefs == nil {
		b.unregioned = append(b.unregioned, s)
	} else {
		for _, k := range s.cellRefs {
			b.cells[k] = append(b.cells[k], s)
		}
	}
	m.count.Add(1)
}

// regionCells returns the index cells a subscription region occupies,
// or nil when the subscription belongs on the unregioned list (no
// region, or a region spanning more than MaxRegionCells cells).
func (m *Matcher) regionCells(region *spatial.Location) []cellKey {
	if region == nil {
		return nil
	}
	x0, y0, x1, y1 := m.cellRange(*region)
	w, h := x1-x0+1, y1-y0+1
	if w > m.cfg.MaxRegionCells || h > m.cfg.MaxRegionCells || w*h > m.cfg.MaxRegionCells {
		return nil
	}
	keys := make([]cellKey, 0, w*h)
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			keys = append(keys, cellKey{cx: cx, cy: cy})
		}
	}
	return keys
}

// maxCellCoord bounds cell coordinates: int(f) for a float beyond the
// int64 range wraps on amd64 (and saturates elsewhere), so a region or
// instance at ±1e21 would otherwise index at a garbage cell and never
// match (spatial.Grid guards the same class in queryKeys). Clamping
// only widens the candidate rectangle — matching stays exact because
// offer verifies every candidate with OpJoint.
const maxCellCoord = 1 << 30

// cellRange converts a location's bounding box to inclusive cell
// coordinates, clamped to ±maxCellCoord.
func (m *Matcher) cellRange(loc spatial.Location) (x0, y0, x1, y1 int) {
	minX, minY, maxX, maxY := loc.Bounds()
	return clampCell(minX / m.cfg.Cell), clampCell(minY / m.cfg.Cell),
		clampCell(maxX / m.cfg.Cell), clampCell(maxY / m.cfg.Cell)
}

func clampCell(f float64) int {
	f = math.Floor(f)
	switch {
	case math.IsNaN(f):
		return 0
	case f < -maxCellCoord:
		return -maxCellCoord
	case f > maxCellCoord:
		return maxCellCoord
	}
	return int(f)
}

// Unsubscribe closes and removes a subscription by id, reporting
// whether it existed. Closing wakes a blocked receiver with ErrClosed
// once the ring drains.
func (m *Matcher) Unsubscribe(id uint64) bool {
	m.mu.Lock()
	s, ok := m.subs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	m.removeLocked(s)
	m.mu.Unlock()
	s.markClosed()
	return true
}

// removeLocked detaches a subscription from the index and folds its
// counters into the retired totals. Callers hold m.mu.
//
//stcps:holds mu
func (m *Matcher) removeLocked(s *Subscription) {
	delete(m.subs, s.id)
	m.count.Add(-1)
	b := m.byEvent[s.spec.Event]
	if b != nil {
		if s.cellRefs == nil {
			b.unregioned = removeSub(b.unregioned, s)
		} else {
			for _, k := range s.cellRefs {
				lst := removeSub(b.cells[k], s)
				if len(lst) == 0 {
					delete(b.cells, k)
				} else {
					b.cells[k] = lst
				}
			}
		}
		if len(b.unregioned) == 0 && len(b.cells) == 0 {
			delete(m.byEvent, s.spec.Event)
		}
	}
	st := s.statsSnapshot()
	m.retired.Delivered += st.Delivered
	m.retired.Dropped += st.Dropped
	m.retired.Replayed += st.Replayed
	m.retired.SeamDropped += st.SeamDropped
}

func removeSub(lst []*Subscription, s *Subscription) []*Subscription {
	for i, v := range lst {
		if v == s {
			lst[i] = lst[len(lst)-1]
			lst[len(lst)-1] = nil
			return lst[:len(lst)-1]
		}
	}
	return lst
}

// Publish offers one emitted instance to every matching subscription.
// cursor is the instance's store sequence number (hasCursor false on
// store-less engines). Publish is the emission-path hot spot: with no
// subscriptions it is one atomic load, and the index probe allocates
// nothing for single-cell (point-located) instances.
//
//stcps:hotpath
func (m *Matcher) Publish(in *event.Instance, cursor uint64, hasCursor bool) {
	if m.count.Load() == 0 {
		return
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.published.Add(1)
	d := Delivery{Inst: *in, Cursor: cursor, HasCursor: hasCursor}
	m.matchBucket(m.byEvent[in.Event], in, &d)
	if in.Event != "" {
		m.matchBucket(m.byEvent[""], in, &d)
	}
}

// matchBucket probes one event bucket: the unregioned list, then the
// cells overlapped by the instance's occurrence location. A sub indexed
// under several of those cells must be offered once — the multi-cell
// path deduplicates; the single-cell fast path (point instances) needs
// no dedup and no allocation.
func (m *Matcher) matchBucket(b *bucket, in *event.Instance, d *Delivery) {
	if b == nil {
		return
	}
	for _, s := range b.unregioned {
		s.offer(in, d)
	}
	if len(b.cells) == 0 {
		return
	}
	x0, y0, x1, y1 := m.cellRange(in.Loc)
	if x0 == x1 && y0 == y1 {
		for _, s := range b.cells[cellKey{cx: x0, cy: y0}] {
			s.offer(in, d)
		}
		return
	}
	seen := make(map[*Subscription]struct{}, 8) //stcps:ignore hotpath multi-cell dedup; point instances take the alloc-free fast path
	// A field instance can span more cells than the bucket populates
	// (pathologically: a near-infinite bbox, clamped above). Walk the
	// populated cells instead of enumerating the rectangle whenever
	// that is cheaper — probe cost is then bounded by the index size,
	// never by the instance's extent. Width and height are compared
	// before multiplying, like spatial.Grid, so the product cannot
	// mislead after an extreme clamp.
	w, h := x1-x0+1, y1-y0+1
	if w > len(b.cells) || h > len(b.cells) || w*h > len(b.cells) {
		for k, lst := range b.cells {
			if k.cx < x0 || k.cx > x1 || k.cy < y0 || k.cy > y1 {
				continue
			}
			for _, s := range lst {
				if _, dup := seen[s]; dup {
					continue
				}
				seen[s] = struct{}{}
				s.offer(in, d)
			}
		}
		return
	}
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			for _, s := range b.cells[cellKey{cx: cx, cy: cy}] {
				if _, dup := seen[s]; dup {
					continue
				}
				seen[s] = struct{}{}
				s.offer(in, d)
			}
		}
	}
}

// Get resolves a live subscription by id.
func (m *Matcher) Get(id uint64) (*Subscription, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.subs[id]
	return s, ok
}

// Stats aggregates the matcher's counters, including those of already
// closed subscriptions.
func (m *Matcher) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := m.retired
	out.Subscriptions = len(m.subs)
	out.Published = m.published.Load()
	out.Matched = m.matched.Load()
	out.CondErrors = m.condErrs.Load()
	for _, s := range m.subs {
		st := s.statsSnapshot()
		out.Delivered += st.Delivered
		out.Dropped += st.Dropped
		out.Replayed += st.Replayed
		out.SeamDropped += st.SeamDropped
	}
	return out
}

// SubscriptionStats lists the live subscriptions' states, ordered by id.
func (m *Matcher) SubscriptionStats() []SubStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]SubStats, 0, len(m.subs))
	for _, s := range m.subs {
		out = append(out, s.statsSnapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the live subscription count.
func (m *Matcher) Len() int { return int(m.count.Load()) }
