package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

const testEvents = `[
  {"id": "E.hot", "layer": "cyber",
   "roles": [{"name": "x", "source": "S.temp", "window": 2, "maxAge": 100}],
   "when": "x.temp > 30"},
  {"id": "E.warm", "layer": "cyber",
   "roles": [{"name": "x", "source": "S.temp", "window": 2}],
   "when": "x.temp > 20", "interval": true},
  {"id": "E.obsHigh", "layer": "sensor",
   "roles": [{"name": "x", "source": "SR1", "window": 1}],
   "when": "x.v > 5"}
]`

func writeEvents(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.json")
	if err := os.WriteFile(path, []byte(testEvents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func feedLines(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		line, err := event.EncodeInstance(event.Instance{
			Layer: event.LayerSensor, Observer: "MT1", Event: "S.temp",
			Seq: uint64(i + 1), Gen: timemodel.Tick(i * 10),
			GenLoc:     spatial.AtPoint(0, 0),
			Occ:        timemodel.At(timemodel.Tick(i * 10)),
			Loc:        spatial.AtPoint(0, 0),
			Attrs:      event.Attrs{"temp": 22 + float64(i)*3}, // 22..37: crosses both thresholds
			Confidence: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	// One raw observation for the sensor-layer event.
	obs, err := event.EncodeObservation(event.Observation{
		Mote: "MT1", Sensor: "SR1", Seq: 1,
		Time: timemodel.At(60), Loc: spatial.AtPoint(1, 1),
		Attrs: event.Attrs{"v": 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(obs)
	sb.WriteByte('\n')
	// Garbage and unknown lines are skipped, not fatal.
	sb.WriteString("{not json}\n")
	sb.WriteString(`{"neither":"kind"}` + "\n")
	return sb.String()
}

// runDaemon runs stcpsd and decodes its emitted instances.
func runDaemon(t *testing.T, args []string, stdin string) ([]event.Instance, string) {
	t.Helper()
	var out, errw strings.Builder
	if err := run(args, strings.NewReader(stdin), &out, &errw); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	var insts []event.Instance
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		in, err := event.DecodeInstance([]byte(line))
		if err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		insts = append(insts, in)
	}
	return insts, errw.String()
}

func TestDaemonSynchronous(t *testing.T) {
	events := writeEvents(t)
	insts, stderr := runDaemon(t, []string{"-events", events, "-observer", "edge-1"}, feedLines(t))

	byEvent := make(map[string]int)
	for _, in := range insts {
		if in.Observer != "edge-1" {
			t.Errorf("observer = %q", in.Observer)
		}
		byEvent[in.Event]++
	}
	// temps 22,25,28,31,34,37: three cross 30 (punctual E.hot), the warm
	// interval opens at 22 and flushes at EOF, and the observation fires
	// E.obsHigh once.
	if byEvent["E.hot"] != 3 {
		t.Errorf("E.hot fired %d times, want 3 (stderr: %s)", byEvent["E.hot"], stderr)
	}
	if byEvent["E.warm"] != 1 {
		t.Errorf("E.warm fired %d times, want 1", byEvent["E.warm"])
	}
	if byEvent["E.obsHigh"] != 1 {
		t.Errorf("E.obsHigh fired %d times, want 1", byEvent["E.obsHigh"])
	}
	if !strings.Contains(stderr, "ingested=7 skipped=2") {
		t.Errorf("stderr summary = %q", stderr)
	}
}

func TestDaemonSharded(t *testing.T) {
	events := writeEvents(t)
	insts, _ := runDaemon(t, []string{"-events", events, "-workers", "4"}, feedLines(t))
	byEvent := make(map[string]int)
	for _, in := range insts {
		byEvent[in.Event]++
	}
	if byEvent["E.hot"] != 3 || byEvent["E.warm"] != 1 || byEvent["E.obsHigh"] != 1 {
		t.Errorf("sharded run emitted %v, want map[E.hot:3 E.obsHigh:1 E.warm:1]", byEvent)
	}
}

func TestDaemonErrors(t *testing.T) {
	var out, errw strings.Builder
	if err := run(nil, strings.NewReader(""), &out, &errw); err == nil {
		t.Error("missing -events should error")
	}
	if err := run([]string{"-events", "/nonexistent.json"}, strings.NewReader(""), &out, &errw); err == nil {
		t.Error("unreadable events file should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", empty}, strings.NewReader(""), &out, &errw); err == nil {
		t.Error("empty events file should error")
	}
	badLayer := filepath.Join(t.TempDir(), "bad.json")
	spec := `[{"id":"E","layer":"bogus","roles":[{"name":"x","source":"s"}],"when":"true"}]`
	if err := os.WriteFile(badLayer, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", badLayer}, strings.NewReader(""), &out, &errw); err == nil {
		t.Error("bad layer should error")
	}
}
