// Command livefeed demonstrates the real-time mode of the CPS network:
// instead of the deterministic simulation bus, event instances stream
// over the goroutine/channel-backed AsyncBus while detection runs
// concurrently — the shape a live deployment of the paper's architecture
// would take.
//
// A producer goroutine publishes temperature observations (as ungated
// sensor event instances) for two rooms; a consumer evaluates the paper's
// composite condition over the stream and prints alerts as they happen.
// This example deliberately reaches below the simulation facade into the
// library's building blocks (condition + detect + network) to show they
// are usable standalone.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/network"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bus := network.NewAsyncBus()
	defer bus.Close()

	// The consumer: a cyber-level detector evaluating "both rooms hot at
	// (nearly) the same time" over the live stream.
	det, err := detect.New("CCU-live", detect.Spec{
		EventID: "E.bothHot",
		Layer:   event.LayerCyber,
		Roles: []detect.RoleSpec{
			{Name: "a", Source: "S.temp.room1", Window: 1, MaxAge: 40},
			{Name: "b", Source: "S.temp.room2", Window: 1, MaxAge: 40},
		},
		Cond:       condition.MustParse("a.temp > 30 and b.temp > 30 and span(a.time, b.time) during [0, 100000]"),
		Confidence: detect.PolicyNoisyOr,
	})
	if err != nil {
		return err
	}

	var (
		mu     sync.Mutex
		alerts []event.Instance
		done   = make(chan struct{})
	)
	const total = 40
	received := 0
	err = bus.Subscribe("ccu", network.TopicAll, func(m network.Message) {
		in, ok := m.Payload.(event.Instance)
		if !ok {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		received++
		genLoc := spatial.AtPoint(0, 0)
		for _, out := range det.Offer(in.Event, in, in.Confidence, in.Gen, genLoc) {
			alerts = append(alerts, out)
			fmt.Printf("  ALERT %s  t^eo=%v  ρ=%.2f  inputs=%v\n",
				out.EntityID(), out.Occ, out.Confidence, out.Inputs)
		}
		if received == total {
			close(done)
		}
	})
	if err != nil {
		return err
	}

	// Two producer goroutines, one per room: temperatures ramp up over
	// the stream so the composite fires partway through.
	fmt.Println("=== livefeed: streaming detection over the async CPS network ===")
	var wg sync.WaitGroup
	for _, room := range []string{"room1", "room2"} {
		room := room
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(room))))
			for i := 0; i < total/2; i++ {
				temp := 20 + float64(i) + rng.Float64()
				inst := event.Instance{
					Layer:      event.LayerSensor,
					Observer:   "MT-" + room,
					Event:      "S.temp." + room,
					Seq:        uint64(i + 1),
					Gen:        timemodel.Tick(i * 10),
					GenLoc:     spatial.AtPoint(0, 0),
					Occ:        timemodel.At(timemodel.Tick(i * 10)),
					Loc:        spatial.AtPoint(0, 0),
					Attrs:      event.Attrs{"temp": temp},
					Confidence: 0.9,
				}
				if err := bus.Publish("MT-"+room, inst.Event, inst); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("timed out waiting for stream")
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nstream complete: %d instances consumed, %d alerts raised\n",
		received, len(alerts))
	st := bus.Stats()
	fmt.Printf("bus: published=%d delivered=%d\n", st.Published, st.Delivered)
	if len(alerts) == 0 {
		return fmt.Errorf("no alerts fired")
	}
	return nil
}
