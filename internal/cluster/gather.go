package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/stcps/stcps/internal/cluster/hlc"
	"github.com/stcps/stcps/internal/db"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/timemodel"
)

// PageReq asks one node for one page of one partition's instances.
type PageReq struct {
	// Spec is the query; Spec.Cursor is a cursor in the serving
	// node's store sequence space (resume-after semantics) and
	// Spec.Limit caps the page.
	Spec db.QuerySpec
	// Partition restricts the page to instances applied under one
	// partition.
	Partition int
}

// PageResp is one partition page, in apply (= HLC, per the
// single-writer stream guarantee) order.
type PageResp struct {
	Instances []event.Instance
	// Seqs are the serving node's store seqs, parallel to Instances —
	// the pagination coordinates.
	Seqs []uint64
	// Stamps are the HLC stamps recorded at apply time, parallel to
	// Instances.
	Stamps []uint64
	// More reports whether the partition may hold further matches
	// beyond this page.
	More bool
	// Frontier is the serving node's HLC reading at page time, the
	// staleness witness.
	Frontier uint64
}

// Fetcher retrieves one partition page from a node. The in-process
// harness calls LocalPage directly; the daemon fans out over HTTP.
type Fetcher func(node int, req PageReq) (PageResp, error)

// LocalPage serves one partition page from the local store: it walks
// the node's own query pages and keeps the instances the stamp sidecar
// attributes to the requested partition. Instances logged outside the
// cluster path (pre-cluster WAL recovery) fall back to routing by
// their occurrence location with a Gen-derived stamp, so mixed stores
// stay queryable.
func (co *Coordinator) LocalPage(req PageReq) (PageResp, error) {
	if co.hooks.Query == nil {
		return PageResp{}, fmt.Errorf("%w: node has no query hook", ErrConfig)
	}
	limit := req.Spec.Limit
	if limit <= 0 {
		limit = 256
	}
	resp := PageResp{Frontier: uint64(co.clock.Current())}
	cursor := req.Spec.Cursor
	for {
		q := req.Spec
		q.Cursor = cursor
		q.Limit = limit
		res, err := co.hooks.Query(q)
		if err != nil {
			return PageResp{}, err
		}
		for k := range res.Instances {
			seq := res.Seqs[k]
			stamp, part, ok := co.stamps.Lookup(seq)
			if !ok {
				part = co.router.PartitionOf(res.Instances[k].OccLoc())
				stamp = hlc.Pack(res.Instances[k].Gen, 0)
			}
			if part != req.Partition {
				continue
			}
			if len(resp.Instances) >= limit {
				// A matching instance beyond the page bound: stop
				// without consuming it; the follow-up fetch resumes
				// after the last emitted seq.
				resp.More = true
				return resp, nil
			}
			resp.Instances = append(resp.Instances, res.Instances[k])
			resp.Seqs = append(resp.Seqs, seq)
			resp.Stamps = append(resp.Stamps, uint64(stamp))
		}
		if res.NextCursor == "" {
			return resp, nil
		}
		cursor = res.NextCursor
	}
}

// Result is one merged scatter-gather page.
type Result struct {
	// Instances is the merged page, ordered by (stamp, partition,
	// seq) — the cluster-wide total order.
	Instances []event.Instance
	// Stamps are the HLC stamps, parallel to Instances.
	Stamps []hlc.Stamp
	// NextCursor resumes the merge; empty when every partition is
	// exhausted.
	NextCursor string
	// Staleness bounds, in ticks of HLC wall time, how far the
	// laggiest consulted owner's applied frontier trails this
	// gateway's clock — the freshness bound of the page.
	Staleness timemodel.Tick
	// Partitions is the number of partitions consulted.
	Partitions int
}

// partCursor is one partition's pagination state inside a composite
// cursor: the node whose seq space the cursor lives in, and the last
// seq emitted from it.
type partCursor struct {
	node   int
	cursor string
}

// cursorPrefix versions the composite cursor encoding. No semicolon
// anywhere in the cursor: net/url drops query parameters containing
// raw ";", which would silently reset pagination for any HTTP client
// that forgets to escape it.
const cursorPrefix = "c1~"

// encodeCursor renders per-partition states as a composite cursor.
func encodeCursor(states []partCursor) string {
	var sb strings.Builder
	sb.WriteString(cursorPrefix)
	for p, st := range states {
		if p > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d:%d:%s", p, st.node, st.cursor)
	}
	return sb.String()
}

// parseCursor decodes a composite cursor for the given partition
// count.
func parseCursor(s string, partitions int) ([]partCursor, error) {
	states := make([]partCursor, partitions)
	for p := range states {
		states[p] = partCursor{node: -1}
	}
	if s == "" {
		return states, nil
	}
	rest, ok := strings.CutPrefix(s, cursorPrefix)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrBadCursor, s)
	}
	for _, part := range strings.Split(rest, ",") {
		fields := strings.SplitN(part, ":", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: entry %q", ErrBadCursor, part)
		}
		p, err := strconv.Atoi(fields[0])
		if err != nil || p < 0 || p >= partitions {
			return nil, fmt.Errorf("%w: partition %q", ErrBadCursor, fields[0])
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil || node < 0 || node >= partitions {
			return nil, fmt.Errorf("%w: node %q", ErrBadCursor, fields[1])
		}
		states[p] = partCursor{node: node, cursor: fields[2]}
	}
	return states, nil
}

// gatherStream is one partition's merge state.
type gatherStream struct {
	p         int
	node      int
	buf       PageResp
	pos       int
	exhausted bool
	fetched   bool
}

// head returns the stream's next stamp/seq, valid only when buffered.
func (g *gatherStream) head() (stamp uint64, seq uint64) {
	return g.buf.Stamps[g.pos], g.buf.Seqs[g.pos]
}

func (g *gatherStream) buffered() bool { return g.pos < len(g.buf.Instances) }

// Gather fans spec out to every partition's acting owner and merges
// the pages into one (stamp, partition, seq)-ordered result under a
// single composite cursor. A partition whose owner cannot be fetched
// falls back to the next routable chain member — its replica holds
// every acked record — unless an existing cursor pins the partition to
// a node that is no longer serving it (ErrStaleCursor).
func (co *Coordinator) Gather(spec db.QuerySpec, fetch Fetcher) (Result, error) {
	n := co.router.Partitions()
	states, err := parseCursor(spec.Cursor, n)
	if err != nil {
		return Result{}, err
	}
	limit := spec.Limit
	if limit <= 0 {
		limit = 1 << 30
	}

	streams := make([]*gatherStream, n)
	for p := 0; p < n; p++ {
		streams[p] = &gatherStream{p: p, node: states[p].node}
	}

	// fill fetches the stream's next page when it has no buffered
	// head and is not exhausted.
	minFrontier := uint64(0)
	frontierSeen := false
	fill := func(g *gatherStream, want int) error {
		req := PageReq{Spec: spec, Partition: g.p}
		req.Spec.Cursor = states[g.p].cursor
		req.Spec.Limit = want
		if g.node < 0 {
			// No pinned node yet: the acting owner serves, falling
			// back through the chain on fetch failure.
			var lastErr error
			for _, c := range co.router.Chain(g.p) {
				if !co.m.Routable(c) {
					continue
				}
				resp, err := co.fetchFrom(c, req, fetch)
				if err != nil {
					lastErr = err
					continue
				}
				g.node, g.buf, g.pos, g.fetched = c, resp, 0, true
				g.exhausted = !resp.More
				if !frontierSeen || resp.Frontier < minFrontier {
					minFrontier, frontierSeen = resp.Frontier, true
				}
				return nil
			}
			if lastErr == nil {
				lastErr = ErrNoOwner
			}
			return fmt.Errorf("partition %d: %w", g.p, lastErr)
		}
		// Pinned: the cursor lives in g.node's seq space and cannot
		// move. The pin must still be a serving chain member.
		if !co.m.Routable(g.node) || !co.inChain(g.p, g.node) {
			return fmt.Errorf("%w: partition %d pinned to node %d", ErrStaleCursor, g.p, g.node)
		}
		resp, err := co.fetchFrom(g.node, req, fetch)
		if err != nil {
			return fmt.Errorf("partition %d: %w", g.p, err)
		}
		g.buf, g.pos, g.fetched = resp, 0, true
		g.exhausted = !resp.More
		if !frontierSeen || resp.Frontier < minFrontier {
			minFrontier, frontierSeen = resp.Frontier, true
		}
		return nil
	}

	var out Result
	out.Partitions = n
	for len(out.Instances) < limit {
		// Every stream must expose its head (or be exhausted) before
		// any emission: the merge bound is only safe when no stream
		// could still produce a smaller stamp.
		live := 0
		for _, g := range streams {
			if !g.buffered() && !(g.exhausted && g.fetched) {
				want := limit - len(out.Instances)
				if want < 16 {
					want = 16
				}
				if err := fill(g, want); err != nil {
					return Result{}, err
				}
			}
			if g.buffered() {
				live++
			}
		}
		if live == 0 {
			break
		}
		// Emit the minimum (stamp, partition, seq) head.
		var best *gatherStream
		var bs, bq uint64
		for _, g := range streams {
			if !g.buffered() {
				continue
			}
			s, q := g.head()
			if best == nil || s < bs || (s == bs && (g.p < best.p || (g.p == best.p && q < bq))) {
				best, bs, bq = g, s, q
			}
		}
		out.Instances = append(out.Instances, best.buf.Instances[best.pos])
		out.Stamps = append(out.Stamps, hlc.Stamp(bs))
		states[best.p] = partCursor{node: best.node, cursor: strconv.FormatUint(bq, 10)}
		best.pos++
	}

	more := false
	for _, g := range streams {
		if g.buffered() || !g.exhausted {
			more = true
		}
	}
	if more {
		// Preserve node pins even for partitions that emitted nothing
		// this page, so the next page keeps reading the same seq
		// spaces.
		for _, g := range streams {
			if states[g.p].node < 0 {
				states[g.p].node = g.node
			}
		}
		out.NextCursor = encodeCursor(states)
	}
	if frontierSeen {
		cur := co.clock.Current()
		if lag := cur.Wall() - hlc.Stamp(minFrontier).Wall(); lag > 0 {
			out.Staleness = lag
		}
	}
	return out, nil
}

// inChain reports whether node is a chain member of partition p.
func (co *Coordinator) inChain(p, node int) bool {
	for _, c := range co.router.Chain(p) {
		if c == node {
			return true
		}
	}
	return false
}

// fetchFrom serves a page locally when node is this node, otherwise
// through the fetcher.
func (co *Coordinator) fetchFrom(node int, req PageReq, fetch Fetcher) (PageResp, error) {
	if node == co.cfg.Self {
		return co.LocalPage(req)
	}
	if fetch == nil {
		return PageResp{}, fmt.Errorf("%w: no fetcher for remote node %d", ErrConfig, node)
	}
	return fetch(node, req)
}
