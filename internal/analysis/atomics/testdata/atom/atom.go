// Package atom exercises the atomics analyzer: mixed atomic/plain
// access to the same memory, in both function-style and typed form.
package atom

import (
	"sync"
	"sync/atomic"
)

// --- rule 1: function-style atomics ---

type stats struct {
	hits   uint64
	misses uint64
	limit  uint64 // never touched atomically: plain access is fine
}

func (s *stats) record() {
	atomic.AddUint64(&s.hits, 1)
	s.misses++ // want `misses is accessed with sync/atomic elsewhere`
}

func (s *stats) snapshot() (uint64, uint64) {
	h := atomic.LoadUint64(&s.hits)
	m := atomic.LoadUint64(&s.misses)
	_ = s.limit
	return h, m
}

func (s *stats) reset() {
	s.hits = 0 // want `hits is accessed with sync/atomic elsewhere`
	atomic.StoreUint64(&s.misses, 0)
}

// --- rule 2: mixed snapshot reads of typed atomics ---

type bank struct {
	mu       sync.Mutex
	ingested atomic.Uint64
	emitted  atomic.Uint64
	dropped  uint64 // bumped under mu
	shards   int    // configuration, assigned once
}

func (b *bank) bump() {
	b.mu.Lock()
	b.dropped++
	b.mu.Unlock()
}

func (b *bank) torn() (uint64, uint64) {
	return b.ingested.Load(), b.dropped // want `plain read of dropped next to atomic loads`
}

func (b *bank) lockedSnapshot() (uint64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ingested.Load(), b.dropped
}

// declaredHeld documents its contract instead of locking inline.
//
//stcps:holds mu
func (b *bank) declaredHeld() (uint64, uint64) {
	return b.emitted.Load(), b.dropped
}

func (b *bank) config() (uint64, int) {
	// shards is assigned, never accumulated: not a counter, no report.
	return b.ingested.Load(), b.shards
}
