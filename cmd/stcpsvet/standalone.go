package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"

	"github.com/stcps/stcps/internal/analysis"
)

// listedPackage is the slice of `go list -json` output the loader uses.
type listedPackage struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

// standalone loads the packages matching patterns with `go list`,
// type-checks them from source, and runs the suite. Exit code 0 means
// clean, 1 means findings or a load failure.
func standalone(patterns []string) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fatalf("%v", err)
	}

	// One shared FileSet and source importer so dependencies are
	// type-checked once across the whole run.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	total := 0
	for _, lp := range pkgs {
		if lp.Error != nil {
			fatalf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		count, err := checkListed(fset, imp, lp)
		if err != nil {
			fatalf("%v", err)
		}
		total += count
	}
	if total > 0 {
		return 1
	}
	return 0
}

// checkListed type-checks one listed package — its library files plus
// in-package test files, the same unit go vet analyzes — and runs the
// suite over it.
func checkListed(fset *token.FileSet, imp types.Importer, lp listedPackage) (int, error) {
	names := make([]string, 0, len(lp.GoFiles)+len(lp.TestGoFiles))
	names = append(names, lp.GoFiles...)
	names = append(names, lp.TestGoFiles...)
	if len(names) == 0 {
		return 0, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return 0, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	tc := types.Config{Importer: imp}
	pkg, err := tc.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return 0, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return runSuite(&analysis.Package{
		ImportPath: lp.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	})
}

// goList resolves the package patterns via the go command.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles,TestGoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
