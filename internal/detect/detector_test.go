package detect

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func mkObs(mote string, seq uint64, at timemodel.Tick, p spatial.Point, attrs event.Attrs) event.Observation {
	return event.Observation{
		Mote: mote, Sensor: "SR", Seq: seq,
		Time: timemodel.At(at), Loc: spatial.AtPt(p), Attrs: attrs,
	}
}

func mustDetector(t *testing.T, spec Spec) *Detector {
	t.Helper()
	d, err := New("OB1", spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	cond := condition.MustParse("x.v > 0")
	base := Spec{
		EventID: "E1",
		Layer:   event.LayerSensor,
		Roles:   []RoleSpec{{Name: "x", Source: "s"}},
		Cond:    cond,
	}
	tests := []struct {
		name    string
		mutate  func(*Spec)
		obs     string
		wantErr error
	}{
		{"valid", func(*Spec) {}, "OB1", nil},
		{"no observer", func(*Spec) {}, "", ErrBadSpec},
		{"no event id", func(s *Spec) { s.EventID = "" }, "OB1", ErrBadSpec},
		{"bad layer", func(s *Spec) { s.Layer = event.LayerPhysical }, "OB1", ErrBadSpec},
		{"no condition", func(s *Spec) { s.Cond = nil }, "OB1", ErrNoCondition},
		{"unfed role", func(s *Spec) { s.Cond = condition.MustParse("y.v > 0") }, "OB1", ErrRoleUnfed},
		{"role missing source", func(s *Spec) { s.Roles = []RoleSpec{{Name: "x"}} }, "OB1", ErrBadSpec},
		{"bad base confidence", func(s *Spec) { s.BaseConfidence = 2 }, "OB1", ErrBadSpec},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := base
			spec.Roles = append([]RoleSpec(nil), base.Roles...)
			tt.mutate(&spec)
			_, err := New(tt.obs, spec)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPunctualSingleRole(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.hot",
		Layer:   event.LayerSensor,
		Roles:   []RoleSpec{{Name: "x", Source: "temp"}},
		Cond:    condition.MustParse("x.temp > 30"),
	})
	genLoc := spatial.AtPoint(0, 0)

	cold := mkObs("MT1", 1, 10, spatial.Pt(0, 0), event.Attrs{"temp": 22})
	if out := d.Offer("temp", cold, 1, 10, genLoc); len(out) != 0 {
		t.Fatalf("cold observation triggered %d instances", len(out))
	}
	hot := mkObs("MT1", 2, 20, spatial.Pt(1, 1), event.Attrs{"temp": 35})
	out := d.Offer("temp", hot, 1, 21, genLoc)
	if len(out) != 1 {
		t.Fatalf("hot observation produced %d instances, want 1", len(out))
	}
	inst := out[0]
	if err := inst.Validate(); err != nil {
		t.Fatalf("invalid instance: %v", err)
	}
	if inst.Event != "S.hot" || inst.Observer != "OB1" {
		t.Errorf("instance identity wrong: %+v", inst)
	}
	if inst.Gen != 21 {
		t.Errorf("t^g = %d, want 21", inst.Gen)
	}
	if !inst.Occ.Equal(timemodel.At(20)) {
		t.Errorf("t^eo = %v, want @20", inst.Occ)
	}
	if !inst.OccLoc().Point().Equal(spatial.Pt(1, 1)) {
		t.Errorf("l^eo = %v", inst.OccLoc())
	}
	if inst.Attrs["temp"] != 35 {
		t.Errorf("attrs = %v", inst.Attrs)
	}
	if len(inst.Inputs) != 1 || inst.Inputs[0] != hot.EntityID() {
		t.Errorf("provenance = %v", inst.Inputs)
	}
	if inst.DetectionLatency() != 1 {
		t.Errorf("EDL = %d, want 1", inst.DetectionLatency())
	}
	// The same entity must not re-trigger.
	if out := d.Offer("temp", hot, 1, 22, genLoc); len(out) != 0 {
		t.Fatal("duplicate binding re-emitted")
	}
	// Unknown source is ignored.
	if out := d.Offer("hum", hot, 1, 23, genLoc); len(out) != 0 {
		t.Fatal("unknown source produced instances")
	}
}

func TestPunctualTwoRoleJoin(t *testing.T) {
	// The paper's S1: x before y and dist < 5.
	d := mustDetector(t, Spec{
		EventID: "S1",
		Layer:   event.LayerSensor,
		Roles: []RoleSpec{
			{Name: "x", Source: "obsX"},
			{Name: "y", Source: "obsY"},
		},
		Cond: condition.MustParse("x.time before y.time and dist(x.loc, y.loc) < 5"),
	})
	genLoc := spatial.AtPoint(0, 0)

	x1 := mkObs("MT1", 1, 10, spatial.Pt(0, 0), nil)
	if out := d.Offer("obsX", x1, 1, 10, genLoc); len(out) != 0 {
		t.Fatal("incomplete binding emitted")
	}
	y1 := mkObs("MT2", 1, 20, spatial.Pt(3, 0), nil)
	out := d.Offer("obsY", y1, 1, 20, genLoc)
	if len(out) != 1 {
		t.Fatalf("S1 detections = %d, want 1", len(out))
	}
	inst := out[0]
	if !inst.Occ.Equal(timemodel.MustBetween(10, 20)) {
		t.Errorf("t^eo span = %v, want [10,20]", inst.Occ)
	}
	if !inst.OccLoc().Point().Equal(spatial.Pt(1.5, 0)) {
		t.Errorf("centroid = %v, want (1.5,0)", inst.OccLoc().Point())
	}
	if len(inst.Inputs) != 2 {
		t.Errorf("inputs = %v", inst.Inputs)
	}

	// A second y joins with the retained x; a y too far does not.
	y2 := mkObs("MT2", 2, 30, spatial.Pt(4, 0), nil)
	if out := d.Offer("obsY", y2, 1, 30, genLoc); len(out) != 1 {
		t.Fatalf("second y should bind with retained x, got %d", len(out))
	}
	yFar := mkObs("MT2", 3, 40, spatial.Pt(50, 0), nil)
	if out := d.Offer("obsY", yFar, 1, 40, genLoc); len(out) != 0 {
		t.Fatal("distant y must not satisfy S1")
	}
}

func TestWindowEviction(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.pair",
		Layer:   event.LayerSensor,
		Roles: []RoleSpec{
			{Name: "x", Source: "sx", Window: 2},
			{Name: "y", Source: "sy", Window: 2},
		},
		Cond: condition.MustParse("x.time before y.time"),
	})
	genLoc := spatial.AtPoint(0, 0)
	for i := uint64(1); i <= 5; i++ {
		d.Offer("sx", mkObs("MT1", i, timemodel.Tick(i*10), spatial.Pt(0, 0), nil), 1, timemodel.Tick(i*10), genLoc)
	}
	// Only the last 2 x entities remain (ticks 40, 50).
	y := mkObs("MT2", 1, 100, spatial.Pt(0, 0), nil)
	out := d.Offer("sy", y, 1, 100, genLoc)
	if len(out) != 2 {
		t.Fatalf("detections = %d, want 2 (window=2)", len(out))
	}
}

func TestMaxAgeEviction(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.fresh",
		Layer:   event.LayerSensor,
		Roles: []RoleSpec{
			{Name: "x", Source: "sx", MaxAge: 50},
			{Name: "y", Source: "sy"},
		},
		Cond: condition.MustParse("x.time before y.time"),
	})
	genLoc := spatial.AtPoint(0, 0)
	d.Offer("sx", mkObs("MT1", 1, 10, spatial.Pt(0, 0), nil), 1, 10, genLoc)
	d.Offer("sx", mkObs("MT1", 2, 200, spatial.Pt(0, 0), nil), 1, 200, genLoc)
	// At t=240, x@10 is 230 old (evicted); x@200 is 40 old (kept).
	y := mkObs("MT2", 1, 240, spatial.Pt(0, 0), nil)
	out := d.Offer("sy", y, 1, 240, genLoc)
	if len(out) != 1 {
		t.Fatalf("detections = %d, want 1 (stale x evicted, fresh x kept)", len(out))
	}
	// Much later, every x has expired: no bindings at all.
	y2 := mkObs("MT2", 2, 900, spatial.Pt(0, 0), nil)
	if out := d.Offer("sy", y2, 1, 900, genLoc); len(out) != 0 {
		t.Fatalf("expired x still bound: %d detections", len(out))
	}
}

func TestIntervalMode(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.occupied",
		Layer:   event.LayerSensor,
		Roles:   []RoleSpec{{Name: "x", Source: "range"}},
		Cond:    condition.MustParse("x.range < 3"),
		Mode:    ModeInterval,
	})
	genLoc := spatial.AtPoint(0, 0)
	offer := func(seq uint64, at timemodel.Tick, r float64) []event.Instance {
		return d.Offer("range", mkObs("MT1", seq, at, spatial.Pt(0, 0), event.Attrs{"range": r}), 1, at, genLoc)
	}
	if out := offer(1, 10, 9); len(out) != 0 {
		t.Fatal("false state emitted")
	}
	if out := offer(2, 20, 2); len(out) != 0 {
		t.Fatal("rising edge must open, not emit")
	}
	if out := offer(3, 30, 1); len(out) != 0 {
		t.Fatal("sustained state must not emit")
	}
	out := offer(4, 40, 8)
	if len(out) != 1 {
		t.Fatalf("falling edge emitted %d instances, want 1", len(out))
	}
	inst := out[0]
	if !inst.Occ.Equal(timemodel.MustBetween(20, 30)) {
		t.Errorf("interval = %v, want [20,30]", inst.Occ)
	}
	if inst.TemporalClass() != event.Interval {
		t.Error("instance should classify interval")
	}
	if inst.Gen != 40 {
		t.Errorf("t^g = %d, want 40", inst.Gen)
	}
	// A new episode opens and is closed by Flush.
	offer(5, 50, 1)
	flushed := d.Flush(60, genLoc)
	if len(flushed) != 1 {
		t.Fatalf("Flush emitted %d, want 1", len(flushed))
	}
	if !flushed[0].Occ.Equal(timemodel.MustBetween(50, 50)) {
		t.Errorf("flushed interval = %v", flushed[0].Occ)
	}
	if again := d.Flush(70, genLoc); len(again) != 0 {
		t.Fatal("second Flush must be empty")
	}
}

func TestIntervalModeTwoRoles(t *testing.T) {
	// Interval state over two streams: both users inside the same room.
	d := mustDetector(t, Spec{
		EventID: "S.meeting",
		Layer:   event.LayerCyber,
		Roles: []RoleSpec{
			{Name: "a", Source: "ua"},
			{Name: "b", Source: "ub"},
		},
		Cond: condition.MustParse("dist(a.loc, b.loc) < 2"),
		Mode: ModeInterval,
	})
	genLoc := spatial.AtPoint(0, 0)
	d.Offer("ua", mkObs("A", 1, 10, spatial.Pt(0, 0), nil), 1, 10, genLoc)
	if out := d.Offer("ub", mkObs("B", 1, 10, spatial.Pt(1, 0), nil), 1, 10, genLoc); len(out) != 0 {
		t.Fatal("open, not emit")
	}
	out := d.Offer("ub", mkObs("B", 2, 50, spatial.Pt(10, 0), nil), 1, 50, genLoc)
	if len(out) != 1 {
		t.Fatalf("separation emitted %d, want 1", len(out))
	}
	if !out[0].Occ.Equal(timemodel.MustBetween(10, 10)) {
		t.Errorf("interval = %v", out[0].Occ)
	}
}

func TestConfidenceCombination(t *testing.T) {
	mk := func(p ConfidencePolicy) *Detector {
		return mustDetector(t, Spec{
			EventID:    "CP.e",
			Layer:      event.LayerCyberPhysical,
			Roles:      []RoleSpec{{Name: "x", Source: "sx"}, {Name: "y", Source: "sy"}},
			Cond:       condition.MustParse("true"),
			Confidence: p,
		})
	}
	feed := func(d *Detector) []event.Instance {
		genLoc := spatial.AtPoint(0, 0)
		d.Offer("sx", mkObs("M1", 1, 10, spatial.Pt(0, 0), nil), 0.8, 10, genLoc)
		return d.Offer("sy", mkObs("M2", 1, 10, spatial.Pt(0, 0), nil), 0.5, 10, genLoc)
	}
	tests := []struct {
		policy ConfidencePolicy
		want   float64
	}{
		{PolicyMin, 0.5},
		{PolicyProduct, 0.4},
		{PolicyMean, 0.65},
		{PolicyNoisyOr, 0.9},
	}
	for _, tt := range tests {
		t.Run(tt.policy.String(), func(t *testing.T) {
			out := feed(mk(tt.policy))
			if len(out) != 1 {
				t.Fatalf("instances = %d", len(out))
			}
			if math.Abs(out[0].Confidence-tt.want) > 1e-9 {
				t.Fatalf("ρ = %v, want %v", out[0].Confidence, tt.want)
			}
		})
	}
}

func TestBaseConfidenceScaling(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID:        "S.e",
		Layer:          event.LayerSensor,
		Roles:          []RoleSpec{{Name: "x", Source: "s"}},
		Cond:           condition.MustParse("true"),
		BaseConfidence: 0.5,
	})
	out := d.Offer("s", mkObs("M", 1, 0, spatial.Pt(0, 0), nil), 0.8, 0, spatial.AtPoint(0, 0))
	if len(out) != 1 || math.Abs(out[0].Confidence-0.4) > 1e-9 {
		t.Fatalf("ρ = %v, want 0.4", out[0].Confidence)
	}
}

func TestTimeAndLocEstimatePolicies(t *testing.T) {
	mk := func(te TimeEstimate, le LocEstimate) *Detector {
		return mustDetector(t, Spec{
			EventID: "S.e",
			Layer:   event.LayerSensor,
			Roles:   []RoleSpec{{Name: "x", Source: "sx"}, {Name: "y", Source: "sy"}},
			Cond:    condition.MustParse("true"),
			TimeEst: te,
			LocEst:  le,
		})
	}
	feed := func(d *Detector) event.Instance {
		genLoc := spatial.AtPoint(0, 0)
		d.Offer("sx", mkObs("M1", 1, 10, spatial.Pt(0, 0), nil), 1, 10, genLoc)
		out := d.Offer("sy", mkObs("M2", 1, 30, spatial.Pt(4, 0), nil), 1, 30, genLoc)
		if len(out) != 1 {
			t.Fatalf("instances = %d", len(out))
		}
		return out[0]
	}
	if inst := feed(mk(EstimateEarliest, EstimateFirst)); !inst.Occ.Equal(timemodel.At(10)) {
		t.Errorf("earliest = %v", inst.Occ)
	}
	if inst := feed(mk(EstimateLatest, EstimateFirst)); !inst.Occ.Equal(timemodel.At(30)) {
		t.Errorf("latest = %v", inst.Occ)
	}
	if inst := feed(mk(EstimateSpan, EstimateCentroid)); !inst.Occ.Equal(timemodel.MustBetween(10, 30)) {
		t.Errorf("span = %v", inst.Occ)
	}
	inst := feed(mk(EstimateSpan, EstimateFirst))
	if !inst.OccLoc().Point().Equal(spatial.Pt(0, 0)) {
		t.Errorf("first loc = %v", inst.OccLoc())
	}
	inst = feed(mk(EstimateSpan, EstimateCentroid))
	if !inst.OccLoc().Point().Equal(spatial.Pt(2, 0)) {
		t.Errorf("centroid loc = %v", inst.OccLoc())
	}
	// Hull of 2 points degenerates to centroid.
	inst = feed(mk(EstimateSpan, EstimateHull))
	if !inst.OccLoc().IsPoint() {
		t.Errorf("degenerate hull should fall back to point, got %v", inst.OccLoc())
	}
}

func TestHullEstimateProducesField(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "CP.zone",
		Layer:   event.LayerCyberPhysical,
		Roles: []RoleSpec{
			{Name: "a", Source: "sa"},
			{Name: "b", Source: "sb"},
			{Name: "c", Source: "sc"},
		},
		Cond:   condition.MustParse("true"),
		LocEst: EstimateHull,
	})
	genLoc := spatial.AtPoint(0, 0)
	d.Offer("sa", mkObs("M1", 1, 0, spatial.Pt(0, 0), nil), 1, 0, genLoc)
	d.Offer("sb", mkObs("M2", 1, 0, spatial.Pt(4, 0), nil), 1, 0, genLoc)
	out := d.Offer("sc", mkObs("M3", 1, 0, spatial.Pt(2, 3), nil), 1, 0, genLoc)
	if len(out) != 1 {
		t.Fatalf("instances = %d", len(out))
	}
	if out[0].SpatialClass() != event.FieldEvent {
		t.Errorf("hull estimate should yield a field event, got %v", out[0].OccLoc())
	}
}

func TestEvalErrorsCounted(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.e",
		Layer:   event.LayerSensor,
		Roles:   []RoleSpec{{Name: "x", Source: "s"}},
		Cond:    condition.MustParse("x.missing > 0"),
	})
	out := d.Offer("s", mkObs("M", 1, 0, spatial.Pt(0, 0), event.Attrs{"v": 1}), 1, 0, spatial.AtPoint(0, 0))
	if len(out) != 0 {
		t.Fatal("error binding must not emit")
	}
	if d.EvalErrors() != 1 {
		t.Fatalf("EvalErrors = %d, want 1", d.EvalErrors())
	}
}

func TestSourcesAndAccessors(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.e",
		Layer:   event.LayerSensor,
		Roles:   []RoleSpec{{Name: "x", Source: "b"}, {Name: "y", Source: "a"}},
		Cond:    condition.MustParse("true"),
	})
	src := d.Sources()
	if len(src) != 2 || src[0] != "a" || src[1] != "b" {
		t.Errorf("Sources = %v", src)
	}
	if d.EventID() != "S.e" {
		t.Errorf("EventID = %q", d.EventID())
	}
	if ModePunctual.String() != "punctual" || ModeInterval.String() != "interval" || Mode(9).String() == "" {
		t.Error("mode names wrong")
	}
}

func TestMaxBindingsCap(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID:     "S.e",
		Layer:       event.LayerSensor,
		Roles:       []RoleSpec{{Name: "x", Source: "sx", Window: 64}, {Name: "y", Source: "sy", Window: 64}},
		Cond:        condition.MustParse("true"),
		MaxBindings: 8,
	})
	genLoc := spatial.AtPoint(0, 0)
	for i := uint64(1); i <= 20; i++ {
		d.Offer("sx", mkObs("M1", i, timemodel.Tick(i), spatial.Pt(0, 0), nil), 1, timemodel.Tick(i), genLoc)
	}
	out := d.Offer("sy", mkObs("M2", 1, 100, spatial.Pt(0, 0), nil), 1, 100, genLoc)
	if len(out) > 8 {
		t.Fatalf("bindings exceeded cap: %d", len(out))
	}
}

// Property-style test: instance confidence is always within [0,1] for any
// policy and any input confidences.
func TestConfidenceAlwaysInRange(t *testing.T) {
	for _, p := range []ConfidencePolicy{PolicyMin, PolicyProduct, PolicyMean, PolicyNoisyOr} {
		for _, confs := range [][]float64{
			{}, {0}, {1}, {0.5}, {0.1, 0.9}, {1, 1, 1}, {0, 0}, {0.3, 0.7, 0.2, 0.95},
		} {
			got := p.Combine(confs)
			if got < 0 || got > 1 {
				t.Errorf("%v.Combine(%v) = %v out of range", p, confs, got)
			}
		}
	}
	if _, ok := ParsePolicy("noisy-or"); !ok {
		t.Error("ParsePolicy failed for noisy-or")
	}
	if _, ok := ParsePolicy("magic"); ok {
		t.Error("ParsePolicy accepted unknown")
	}
	if ConfidencePolicy(99).String() == "" {
		t.Error("unknown policy must render")
	}
	if got := ConfidencePolicy(99).Combine([]float64{0.5, 0.2}); got != 0.2 {
		t.Errorf("unknown policy should fall back to min, got %v", got)
	}
}

func TestDedupSetBounded(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID:     "S.e",
		Layer:       event.LayerSensor,
		Roles:       []RoleSpec{{Name: "x", Source: "s", Window: 4}},
		Cond:        condition.MustParse("x.v > 0"),
		MaxBindings: 4,
	})
	genLoc := spatial.AtPoint(0, 0)
	total := 0
	for i := uint64(1); i <= 200; i++ {
		out := d.Offer("s", mkObs("M", i, timemodel.Tick(i), spatial.Pt(0, 0), event.Attrs{"v": 1}), 1, timemodel.Tick(i), genLoc)
		total += len(out)
	}
	if total != 200 {
		t.Fatalf("each fresh entity should emit once: %d", total)
	}
	if len(d.emitted) > 16+1 {
		t.Fatalf("dedup set unbounded: %d", len(d.emitted))
	}
}

func TestInstanceSeqMonotonic(t *testing.T) {
	d := mustDetector(t, Spec{
		EventID: "S.e",
		Layer:   event.LayerSensor,
		Roles:   []RoleSpec{{Name: "x", Source: "s"}},
		Cond:    condition.MustParse("x.v > 0"),
	})
	genLoc := spatial.AtPoint(0, 0)
	var last uint64
	for i := uint64(1); i <= 10; i++ {
		out := d.Offer("s", mkObs("M", i, timemodel.Tick(i), spatial.Pt(0, 0), event.Attrs{"v": 1}), 1, timemodel.Tick(i), genLoc)
		for _, inst := range out {
			if inst.Seq <= last {
				t.Fatalf("seq not monotonic: %d after %d", inst.Seq, last)
			}
			last = inst.Seq
			if inst.EntityID() != fmt.Sprintf("E(OB1,S.e,%d)", inst.Seq) {
				t.Fatalf("entity id = %q", inst.EntityID())
			}
		}
	}
}
