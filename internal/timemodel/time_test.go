package timemodel

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAtIsPunctual(t *testing.T) {
	tm := At(42)
	if !tm.IsPunctual() {
		t.Fatalf("At(42).IsPunctual() = false, want true")
	}
	if tm.IsInterval() {
		t.Fatalf("At(42).IsInterval() = true, want false")
	}
	if tm.Start() != 42 || tm.End() != 42 {
		t.Fatalf("At(42) bounds = (%d,%d), want (42,42)", tm.Start(), tm.End())
	}
	if tm.Duration() != 0 {
		t.Fatalf("At(42).Duration() = %d, want 0", tm.Duration())
	}
}

func TestBetween(t *testing.T) {
	tests := []struct {
		name       string
		start, end Tick
		wantErr    bool
		wantPoint  bool
	}{
		{name: "proper interval", start: 1, end: 5},
		{name: "degenerate interval is punctual", start: 3, end: 3, wantPoint: true},
		{name: "inverted", start: 5, end: 1, wantErr: true},
		{name: "negative ticks ok", start: -10, end: -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tm, err := Between(tt.start, tt.end)
			if tt.wantErr {
				if !errors.Is(err, ErrInvertedInterval) {
					t.Fatalf("Between(%d,%d) err = %v, want ErrInvertedInterval", tt.start, tt.end, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Between(%d,%d) unexpected err: %v", tt.start, tt.end, err)
			}
			if tm.IsPunctual() != tt.wantPoint {
				t.Fatalf("IsPunctual() = %v, want %v", tm.IsPunctual(), tt.wantPoint)
			}
			if tm.Duration() != tt.end-tt.start {
				t.Fatalf("Duration() = %d, want %d", tm.Duration(), tt.end-tt.start)
			}
		})
	}
}

func TestMustBetweenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBetween(5,1) did not panic")
		}
	}()
	MustBetween(5, 1)
}

func TestShift(t *testing.T) {
	tm := MustBetween(10, 20).Shift(-5)
	if tm.Start() != 5 || tm.End() != 15 {
		t.Fatalf("Shift(-5) = %v, want [5,15]", tm)
	}
	if !At(7).Shift(3).Equal(At(10)) {
		t.Fatalf("At(7).Shift(3) != At(10)")
	}
}

func TestExtendAndHull(t *testing.T) {
	tm := At(5).Extend(9)
	if !tm.Equal(MustBetween(5, 9)) {
		t.Fatalf("At(5).Extend(9) = %v, want [5,9]", tm)
	}
	tm = tm.Extend(2)
	if !tm.Equal(MustBetween(2, 9)) {
		t.Fatalf("Extend(2) = %v, want [2,9]", tm)
	}
	h := MustBetween(1, 3).Hull(MustBetween(7, 9))
	if !h.Equal(MustBetween(1, 9)) {
		t.Fatalf("Hull = %v, want [1,9]", h)
	}
}

func TestContainsAndIntersects(t *testing.T) {
	iv := MustBetween(10, 20)
	tests := []struct {
		p    Tick
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {20, true}, {21, false},
	}
	for _, tt := range tests {
		if got := iv.Contains(tt.p); got != tt.want {
			t.Errorf("[10,20].Contains(%d) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !iv.Intersects(MustBetween(20, 30)) {
		t.Error("[10,20] should intersect [20,30] at shared tick 20")
	}
	if iv.Intersects(MustBetween(21, 30)) {
		t.Error("[10,20] should not intersect [21,30]")
	}
	if !iv.Intersects(At(10)) {
		t.Error("[10,20] should intersect @10")
	}
}

func TestStringFormat(t *testing.T) {
	if got := At(7).String(); got != "@7" {
		t.Errorf("At(7).String() = %q, want \"@7\"", got)
	}
	if got := MustBetween(3, 9).String(); got != "[3,9]" {
		t.Errorf("[3,9].String() = %q, want \"[3,9]\"", got)
	}
}

// normTime converts two arbitrary ticks into a valid Time for property tests.
func normTime(a, b Tick) Time {
	if b < a {
		a, b = b, a
	}
	return Time{start: a, end: b}
}

func TestHullContainsBothProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := normTime(Tick(a1), Tick(a2))
		b := normTime(Tick(b1), Tick(b2))
		h := a.Hull(b)
		return h.Contains(a.Start()) && h.Contains(a.End()) &&
			h.Contains(b.Start()) && h.Contains(b.End())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectsSymmetricProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := normTime(Tick(a1), Tick(a2))
		b := normTime(Tick(b1), Tick(b2))
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftPreservesDurationProperty(t *testing.T) {
	f := func(a1, a2, d int16) bool {
		a := normTime(Tick(a1), Tick(a2))
		s := a.Shift(Tick(d))
		return s.Duration() == a.Duration() && s.IsPunctual() == a.IsPunctual()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
