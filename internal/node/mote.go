// Package node implements the observer hierarchy of the CPS architecture
// (Tan, Vuran, Goddard, ICDCSW 2009, Sections 3 and 5, Figs. 1 and 2):
//
//   - MoteNode — a sensor mote, the first level of observers: samples its
//     sensors into physical observations (Eq. 5.2) and evaluates sensor
//     event conditions into sensor event instances (Eq. 5.3), which it
//     sends over the WSN to its sink;
//   - SinkNode — a WSN sink, the second level: collects sensor event
//     instances and generates cyber-physical event instances (Eq. 5.4),
//     publishing them on the CPS network;
//   - CCU — a CPS control unit, the highest level: combines cyber-physical
//     and cyber event instances into cyber events (Eq. 5.5) and associates
//     actions with them (event–action rules);
//   - DispatchNode — disseminates actuator commands to actor motes;
//   - ActorMote — executes actuator commands against the physical world,
//     closing the control loop.
package node

import (
	"errors"
	"fmt"

	"github.com/stcps/stcps/internal/db"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/engine"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/phys"
	"github.com/stcps/stcps/internal/sim"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/internal/wsn"
)

// logAfter builds the engine log hook shared by all observer nodes: the
// paper's "automatically transferred to the database server after a
// certain time" — each emitted instance is appended to the store ttl
// ticks after its generation. A nil store disables logging.
func logAfter(sched *sim.Scheduler, store *db.Store, ttl timemodel.Tick) engine.EmitFunc {
	if store == nil {
		return nil
	}
	return func(in event.Instance) {
		sched.After(ttl, func() { _ = store.Log(in) })
	}
}

// Node errors.
var (
	// ErrBadSensor is returned for invalid sensor configurations.
	ErrBadSensor = errors.New("node: invalid sensor config")
	// ErrBadNode is returned for invalid node configurations.
	ErrBadNode = errors.New("node: invalid node config")
)

// SensorConfig describes one sensor SR installed on a mote. A sensor
// measures exactly one physical property (Section 3): a phenomenon
// attribute (Attr set, Object empty), the distance to a physical object
// (Object set, Attr empty — producing the "range" attribute, as in the
// paper's "range measurement of user A" example), or an object's own
// attribute (both set, e.g. a light sensor reading the light's "on"
// state).
type SensorConfig struct {
	// ID is the sensor identifier SR_id; also the detector source key.
	ID string
	// Attr is the sampled attribute name.
	Attr string
	// Object is the physical object the sensor observes, when not
	// sampling a phenomenon.
	Object string
	// Period is the sampling period in ticks.
	Period timemodel.Tick
	// Offset delays the first sample (phase), defaulting to 0.
	Offset timemodel.Tick
	// Noise is the standard deviation of additive Gaussian measurement
	// noise.
	Noise float64
}

// RangeAttr is the attribute name produced by range sensors.
const RangeAttr = "range"

func (c SensorConfig) validate() error {
	if c.ID == "" {
		return fmt.Errorf("sensor needs an id: %w", ErrBadSensor)
	}
	if c.Period <= 0 {
		return fmt.Errorf("sensor %q period %d: %w", c.ID, c.Period, ErrBadSensor)
	}
	if c.Attr == "" && c.Object == "" {
		return fmt.Errorf("sensor %q samples nothing: %w", c.ID, ErrBadSensor)
	}
	return nil
}

// attrName returns the attribute the sensor reports.
func (c SensorConfig) attrName() string {
	if c.Object != "" && c.Attr == "" {
		return RangeAttr
	}
	return c.Attr
}

// MoteNode is a sensor mote observer. It is driven entirely by the
// simulation scheduler.
type MoteNode struct {
	id      string
	mote    *wsn.Mote
	world   *phys.World
	net     *wsn.Network
	sched   *sim.Scheduler
	sensors []SensorConfig
	bank    *engine.Bank
	store   *db.Store
	logTTL  timemodel.Tick
	seq     map[string]uint64

	// Observations counts samples taken; Sent counts instances sent
	// upstream.
	Observations uint64
	Sent         uint64
}

// NewMoteNode creates a mote observer for an already-registered WSN mote.
// store may be nil (no observation logging); logTTL is the paper's
// "automatically transferred to the database server after a certain time".
func NewMoteNode(sched *sim.Scheduler, world *phys.World, net *wsn.Network, moteID string, sensors []SensorConfig, store *db.Store, logTTL timemodel.Tick) (*MoteNode, error) {
	m, err := net.Mote(moteID)
	if err != nil {
		return nil, err
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("mote %q has no sensors: %w", moteID, ErrBadNode)
	}
	for _, sc := range sensors {
		if err := sc.validate(); err != nil {
			return nil, err
		}
	}
	mn := &MoteNode{
		id:      moteID,
		mote:    m,
		world:   world,
		net:     net,
		sched:   sched,
		sensors: append([]SensorConfig(nil), sensors...),
		store:   store,
		logTTL:  logTTL,
		seq:     make(map[string]uint64, len(sensors)),
	}
	mn.bank, err = engine.NewBank(engine.Config{
		Observer: moteID,
		Loc:      spatial.AtPt(m.Pos),
		Log:      logAfter(sched, store, logTTL),
		Emit:     mn.send,
	})
	if err != nil {
		return nil, err
	}
	return mn, nil
}

// ID returns the mote identifier.
func (m *MoteNode) ID() string { return m.id }

// AddDetector installs a sensor-event detector on the mote. The spec's
// layer must be LayerSensor; role sources refer to sensor IDs.
func (m *MoteNode) AddDetector(spec detect.Spec) error {
	if spec.Layer == 0 {
		spec.Layer = event.LayerSensor
	}
	if spec.Layer != event.LayerSensor {
		return fmt.Errorf("mote detector layer %v: %w", spec.Layer, ErrBadNode)
	}
	_, err := m.bank.AddDetector(spec)
	return err
}

// Bank exposes the mote's detection engine bank (tracing, stats).
func (m *MoteNode) Bank() *engine.Bank { return m.bank }

// Start schedules periodic sampling for every sensor.
func (m *MoteNode) Start() error {
	for i := range m.sensors {
		sc := m.sensors[i]
		if _, err := m.sched.Every(sc.Offset, sc.Period, func() { m.sample(sc) }); err != nil {
			return fmt.Errorf("mote %q: %w", m.id, err)
		}
	}
	return nil
}

// sample takes one observation from a sensor and runs the mote's
// detectors.
func (m *MoteNode) sample(sc SensorConfig) {
	val, ok := m.measure(sc)
	if !ok {
		return
	}
	m.seq[sc.ID]++
	m.Observations++
	obs := event.Observation{
		Mote:   m.id,
		Sensor: sc.ID,
		Seq:    m.seq[sc.ID],
		Time:   timemodel.At(m.sched.Now()),
		Loc:    spatial.AtPt(m.mote.Pos),
		Attrs:  event.Attrs{sc.attrName(): val},
	}
	if m.store != nil {
		o := obs
		m.sched.After(m.logTTL, func() { m.store.LogObservation(o) })
	}
	m.bank.Ingest(sc.ID, obs, 1, m.sched.Now(), spatial.AtPt(m.mote.Pos))
}

// measure resolves the sensor's physical value at the current time.
func (m *MoteNode) measure(sc SensorConfig) (float64, bool) {
	var (
		v  float64
		ok bool
	)
	switch {
	case sc.Object != "" && sc.Attr == "":
		pos, err := m.world.ObjectPos(sc.Object)
		if err != nil {
			return 0, false
		}
		v, ok = m.mote.Pos.Dist(pos), true
	case sc.Object != "":
		obj, err := m.world.Object(sc.Object)
		if err != nil {
			return 0, false
		}
		v, ok = obj.Attrs[sc.Attr], true
	default:
		v, ok = m.world.SampleAttr(sc.Attr, m.mote.Pos)
	}
	if !ok {
		return 0, false
	}
	if sc.Noise > 0 {
		v += m.sched.RNG().NormFloat64() * sc.Noise
	}
	return v, true
}

// send is the bank's emit hook: sensor event instances go up the WSN
// (logging already happened via the bank's log hook).
func (m *MoteNode) send(inst event.Instance) {
	m.Sent++
	// Radio loss is part of the model; routing errors are programming
	// errors surfaced by tests via Stats.
	_ = m.net.SendUp(m.id, inst)
}

// FlushIntervals closes any open interval detections at the current time
// (end of run).
func (m *MoteNode) FlushIntervals() {
	m.bank.Flush(m.sched.Now(), spatial.AtPt(m.mote.Pos))
}
