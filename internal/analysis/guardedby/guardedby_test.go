package guardedby

import (
	"testing"

	"github.com/stcps/stcps/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata/guard", Analyzer)
}
