//go:build !unix

package wal

import "os"

// lockFile is a no-op on platforms without POSIX record locks: the
// directory is unguarded against concurrent processes there, but the
// module still compiles.
func lockFile(*os.File) error { return nil }
