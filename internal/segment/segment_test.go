package segment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// mkIns builds n instances with ascending occurrence times and a
// deterministic spread of locations and event ids.
func mkIns(n int, firstSeq uint64) []event.Instance {
	ins := make([]event.Instance, n)
	for i := range ins {
		ev := "S.hot"
		if i%3 == 0 {
			ev = "S.cold"
		}
		x := float64((i % 7) * 10)
		y := float64((i % 5) * 10)
		tick := timemodel.Tick(100 + int64(firstSeq) + int64(i))
		ins[i] = event.Instance{
			Layer:      event.LayerSensor,
			Observer:   fmt.Sprintf("MT%d", i%4),
			Event:      ev,
			Seq:        firstSeq + uint64(i),
			Gen:        tick,
			GenLoc:     spatial.AtPoint(x, y),
			Occ:        timemodel.At(tick),
			Loc:        spatial.AtPoint(x, y),
			Confidence: 1,
		}
	}
	return ins
}

func writeSegFile(t *testing.T, path string, firstSeq, walSeq uint64, blockSize int, ins []event.Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeTo(&buf, firstSeq, walSeq, DefaultCellSize, blockSize, ins); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func collect(t *testing.T, s *Segment, f Filter) (seqs []uint64, got []event.Instance) {
	t.Helper()
	it := event.NewInterner()
	_, _, _, _, err := s.scan(&f, it, func(seq uint64, in *event.Instance) bool {
		seqs = append(seqs, seq)
		cp := *in
		cp.Inputs = append([]string(nil), in.Inputs...)
		got = append(got, cp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, got
}

func TestSegmentRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, wantSegmentName(7))
	ins := mkIns(300, 7)
	ins[5].Inputs = []string{"a", "b"}
	ins[5].Attrs = event.Attrs{"k": 1.5}
	writeSegFile(t, path, 7, 42, 64, ins)

	s, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()
	if s.firstSeq != 7 || s.count != 300 || s.walSeq != 42 {
		t.Fatalf("header = %d/%d/%d", s.firstSeq, s.count, s.walSeq)
	}
	if got, want := len(s.blocks), (300+63)/64; got != want {
		t.Fatalf("blocks = %d, want %d", got, want)
	}
	seqs, got := collect(t, s, Filter{})
	if len(got) != 300 {
		t.Fatalf("scan yielded %d", len(got))
	}
	for i := range got {
		if seqs[i] != 7+uint64(i) {
			t.Fatalf("seq[%d] = %d", i, seqs[i])
		}
		if !reflect.DeepEqual(got[i], ins[i]) {
			t.Fatalf("instance %d mismatch:\n got %+v\nwant %+v", i, got[i], ins[i])
		}
	}
}

func TestSegmentSeqWindow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, wantSegmentName(0))
	writeSegFile(t, path, 0, 0, 32, mkIns(100, 0))
	s, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()
	seqs, _ := collect(t, s, Filter{MinSeq: 40, MaxSeq: 70})
	if len(seqs) != 30 || seqs[0] != 40 || seqs[len(seqs)-1] != 69 {
		t.Fatalf("window scan = %v", seqs)
	}
}

func TestSegmentPruning(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, wantSegmentName(0))
	writeSegFile(t, path, 0, 0, 32, mkIns(320, 0))
	s, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()

	// Narrow time window: only blocks covering it are read.
	f := Filter{HasTime: true, From: 110, To: 120}
	read, pruned, _, _, err := s.scan(&f, nil, func(uint64, *event.Instance) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if read != 1 || pruned != len(s.blocks)-1 {
		t.Errorf("time prune: read %d pruned %d of %d", read, pruned, len(s.blocks))
	}

	// Absent event id: the bloom prunes every block.
	f = Filter{Event: "S.absent"}
	read, pruned, _, _, err = s.scan(&f, nil, func(uint64, *event.Instance) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if read != 0 || pruned != len(s.blocks) {
		t.Errorf("event prune: read %d pruned %d", read, pruned)
	}

	// Far-away region: cell extent prunes every block.
	far := spatial.AtPoint(1e6, 1e6)
	f = Filter{Region: &far}
	read, pruned, _, _, err = s.scan(&f, nil, func(uint64, *event.Instance) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if read != 0 || pruned != len(s.blocks) {
		t.Errorf("region prune: read %d pruned %d", read, pruned)
	}

	// Pruning never loses matches: filtered scan == full scan + filter.
	region, err := spatial.Rect(0, 0, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	loc := spatial.InField(region)
	f = Filter{Event: "S.cold", Region: &loc, HasTime: true, From: 100, To: 250}
	var fast []uint64
	if _, _, _, _, err := s.scan(&f, nil, func(seq uint64, in *event.Instance) bool {
		fast = append(fast, seq)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var slow []uint64
	full := Filter{}
	if _, _, _, _, err := s.scan(&full, nil, func(seq uint64, in *event.Instance) bool {
		if f.match(in) {
			slow = append(slow, seq)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(slow) == 0 {
		t.Fatal("filter matched nothing; test is vacuous")
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("pruned scan %v != filtered full scan %v", fast, slow)
	}
}

func TestSegmentEarlyStop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, wantSegmentName(0))
	writeSegFile(t, path, 0, 0, 32, mkIns(100, 0))
	s, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()
	n := 0
	_, _, _, stopped, err := s.scan(&Filter{}, nil, func(uint64, *event.Instance) bool {
		n++
		return n < 10
	})
	if err != nil || !stopped || n != 10 {
		t.Fatalf("early stop: n=%d stopped=%v err=%v", n, stopped, err)
	}
}

// TestSegmentCorruption flips/truncates every interesting region of a
// valid file and demands a loud ErrCorrupt — never a silent partial
// read.
func TestSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	good := writeSegFile(t, filepath.Join(dir, "good.seg"), 0, 0, 16, mkIns(64, 0))

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-5] }},
		{"truncated to header", func(b []byte) []byte { return b[:20] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"trailer magic", func(b []byte) []byte { b[len(b)-10] ^= 0xFF; return b }},
		{"trailer crc target", func(b []byte) []byte { b[len(b)-trailerSize] ^= 0xFF; return b }},
		{"footer bit flip", func(b []byte) []byte { b[len(b)-trailerSize-10] ^= 0x01; return b }},
		{"header bit flip", func(b []byte) []byte { b[9] ^= 0x01; return b }},
		{"appended garbage", func(b []byte) []byte { return append(b, 0xAB, 0xCD) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mangle(append([]byte(nil), good...))
			path := filepath.Join(dir, "bad.seg")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := open(path); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open(%s) err = %v, want ErrCorrupt", tc.name, err)
			}
		})
	}

	// Block-body damage is caught lazily at scan time: the footer is
	// intact, open succeeds, and the scan fails loud.
	// The first block frame's payload starts right after the header
	// frame (8 B frame header + headerSize payload) plus its own 8 B
	// frame header.
	buf := append([]byte(nil), good...)
	buf[8+headerSize+8+12] ^= 0x01
	path := filepath.Join(dir, "badblock.seg")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.kill()
	_, _, _, _, serr := s.scan(&Filter{}, nil, func(uint64, *event.Instance) bool { return true })
	if !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("scan over damaged block err = %v, want ErrCorrupt", serr)
	}
}

// FuzzSegmentOpen feeds mutated segment bytes to the reader: it must
// either reject the file or serve a scan that terminates cleanly —
// never panic, never report corruption-free success with impossible
// structure.
func FuzzSegmentOpen(f *testing.F) {
	var buf bytes.Buffer
	if err := writeTo(&buf, 3, 9, DefaultCellSize, 8, mkIns(40, 3)); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	flip := append([]byte(nil), good...)
	flip[len(flip)-20] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		s, err := open(path)
		if err != nil {
			return
		}
		defer s.kill()
		prev := uint64(0)
		first := true
		_, _, _, _, serr := s.scan(&Filter{}, event.NewInterner(), func(seq uint64, in *event.Instance) bool {
			if !first && seq != prev+1 {
				t.Fatalf("non-contiguous seqs %d -> %d", prev, seq)
			}
			first, prev = false, seq
			return true
		})
		if serr != nil && !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("scan err = %v, want nil or ErrCorrupt", serr)
		}
	})
}
