package event

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func validInstance() Instance {
	return Instance{
		Layer:      LayerSensor,
		Observer:   "MT1",
		Event:      "S.nearby",
		Seq:        3,
		Gen:        120,
		GenLoc:     spatial.AtPoint(1, 1),
		Occ:        timemodel.At(100),
		Loc:        spatial.AtPoint(1.5, 1.2),
		Attrs:      Attrs{"range": 2.0},
		Confidence: 0.9,
		Inputs:     []string{"O(MT1,SRx,41)", "O(MT1,SRx,42)"},
	}
}

func TestInstanceValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Instance)
		wantErr error
	}{
		{"valid", func(*Instance) {}, nil},
		{"bad layer physical", func(i *Instance) { i.Layer = LayerPhysical }, ErrBadLayer},
		{"bad layer observation", func(i *Instance) { i.Layer = LayerObservation }, ErrBadLayer},
		{"missing observer", func(i *Instance) { i.Observer = "" }, ErrMissingObserver},
		{"missing event", func(i *Instance) { i.Event = "" }, ErrMissingEventID},
		{"confidence low", func(i *Instance) { i.Confidence = -0.1 }, ErrConfidenceRange},
		{"confidence high", func(i *Instance) { i.Confidence = 1.1 }, ErrConfidenceRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := validInstance()
			tt.mutate(&in)
			err := in.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestInstanceEntity(t *testing.T) {
	in := validInstance()
	if in.EntityID() != "E(MT1,S.nearby,3)" {
		t.Errorf("EntityID = %q", in.EntityID())
	}
	if !in.OccTime().Equal(timemodel.At(100)) {
		t.Error("OccTime should be the estimated occurrence")
	}
	if !in.OccLoc().Point().Equal(spatial.Pt(1.5, 1.2)) {
		t.Error("OccLoc should be the estimated location")
	}
	if v, ok := in.Attr("range"); !ok || v != 2.0 {
		t.Error("Attr lookup failed")
	}
	if in.TemporalClass() != Punctual {
		t.Error("punctual occurrence expected")
	}
	if in.SpatialClass() != PointEvent {
		t.Error("point occurrence expected")
	}
}

func TestDetectionLatency(t *testing.T) {
	in := validInstance()
	in.Occ = timemodel.MustBetween(80, 100)
	in.Gen = 125
	if got := in.DetectionLatency(); got != 25 {
		t.Errorf("DetectionLatency = %d, want 25", got)
	}
}

func TestInstanceCodecRoundTrip(t *testing.T) {
	in := validInstance()
	in.Occ = timemodel.MustBetween(90, 110)
	f := spatial.MustField(spatial.Pt(0, 0), spatial.Pt(2, 0), spatial.Pt(2, 2), spatial.Pt(0, 2))
	in.Loc = spatial.InField(f)

	data, err := EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.EntityID() != in.EntityID() {
		t.Errorf("identity changed: %q -> %q", in.EntityID(), got.EntityID())
	}
	if !got.Occ.Equal(in.Occ) {
		t.Errorf("occ changed: %v -> %v", in.Occ, got.Occ)
	}
	gf, ok := got.Loc.Field()
	if !ok || !gf.Equal(f) {
		t.Error("field location corrupted in round trip")
	}
	if got.Confidence != in.Confidence {
		t.Error("confidence changed")
	}
	if len(got.Inputs) != len(in.Inputs) {
		t.Error("provenance dropped")
	}
}

func TestCodecRejectsInvalid(t *testing.T) {
	in := validInstance()
	in.Confidence = 2
	if _, err := EncodeInstance(in); !errors.Is(err, ErrConfidenceRange) {
		t.Errorf("encode invalid: err = %v", err)
	}
	if _, err := DecodeInstance([]byte(`{"layer":1,"observer":"x","event":"y"}`)); !errors.Is(err, ErrBadLayer) {
		t.Errorf("decode invalid layer: err = %v", err)
	}
	if _, err := DecodeInstance([]byte(`{`)); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestObservationCodecRoundTrip(t *testing.T) {
	o := Observation{
		Mote: "MT2", Sensor: "SRy", Seq: 9,
		Time:  timemodel.At(55),
		Loc:   spatial.AtPoint(3, 4),
		Attrs: Attrs{"temp": 21},
	}
	data, err := EncodeObservation(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeObservation(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.EntityID() != o.EntityID() {
		t.Errorf("identity changed: %q -> %q", o.EntityID(), got.EntityID())
	}
	if v, ok := got.Attr("temp"); !ok || v != 21 {
		t.Error("attrs corrupted")
	}
	if _, err := DecodeObservation([]byte(`nope`)); err == nil {
		t.Error("malformed observation should fail")
	}
}

// Property: codec round trip preserves the entity view of any valid
// instance with random numeric fields.
func TestInstanceRoundTripProperty(t *testing.T) {
	f := func(seq uint16, gen int16, occStart, occLen uint8, conf uint8, x, y int8) bool {
		in := Instance{
			Layer:      LayerCyber,
			Observer:   "CCU1",
			Event:      "E.test",
			Seq:        uint64(seq),
			Gen:        timemodel.Tick(gen),
			GenLoc:     spatial.AtPoint(0, 0),
			Occ:        timemodel.MustBetween(timemodel.Tick(occStart), timemodel.Tick(occStart)+timemodel.Tick(occLen)),
			Loc:        spatial.AtPoint(float64(x), float64(y)),
			Confidence: float64(conf) / 255,
		}
		data, err := EncodeInstance(in)
		if err != nil {
			return false
		}
		got, err := DecodeInstance(data)
		if err != nil {
			return false
		}
		return got.EntityID() == in.EntityID() &&
			got.Occ.Equal(in.Occ) &&
			got.OccLoc().Point().Equal(in.OccLoc().Point()) &&
			got.Confidence == in.Confidence
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
