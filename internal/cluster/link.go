package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/frame"
	"github.com/stcps/stcps/wireclient"
)

// ErrLinkDown is the base error for a peer link that failed to deliver.
var ErrLinkDown = errors.New("cluster: peer link down")

// outRec is one forward- or replica-hop record, materialized so it
// stays valid after the originating batch's buffers are recycled.
type outRec struct {
	f     frame.Forward
	isObs bool
	obs   event.Observation
	inst  event.Instance
}

// sendOp is one enqueue's worth of records bound for a peer, with its
// completion signal. The enqueuer blocks on done (outside the engine
// guard) and inspects err; the sender goroutine completes ops strictly
// in queue order, which is what makes a follower's apply order match
// the owner's.
type sendOp struct {
	recs []outRec
	done chan struct{}
	err  error
}

// link is the ordered delivery channel to one peer: a FIFO of sendOps
// drained by a single sender goroutine over a reconnecting wire
// client. Enqueue order is completion order; a delivery failure fails
// the op (the enqueuer re-routes) and resets the client so the next op
// starts from a fresh dial.
type link struct {
	dest int
	spec NodeSpec
	opts wireclient.Options

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*sendOp //stcps:guardedby mu
	closed bool      //stcps:guardedby mu

	client *wireclient.Client // sender goroutine only

	wg    sync.WaitGroup
	sent  atomic.Uint64
	fails atomic.Uint64
}

func newLink(dest int, spec NodeSpec, retry wireclient.ReconnectOptions) *link {
	l := &link{
		dest: dest,
		spec: spec,
		opts: wireclient.Options{
			DialTimeout: 2 * time.Second,
			Reconnect:   retry,
		},
	}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.sender()
	return l
}

// enqueue appends recs to the link FIFO and returns the op to wait on.
// It never blocks (safe to call under the engine guard) and never
// fails — delivery errors surface on the op.
func (l *link) enqueue(recs []outRec) *sendOp {
	op := &sendOp{recs: recs, done: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		op.err = ErrShutdown
		close(op.done)
	} else {
		l.queue = append(l.queue, op)
		l.cond.Signal()
	}
	l.mu.Unlock()
	return op
}

// close shuts the link down: queued and future ops fail with
// ErrShutdown and the sender goroutine exits after closing its client.
func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
}

// sender drains the FIFO one op at a time.
func (l *link) sender() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			if l.client != nil {
				_ = l.client.Close()
				l.client = nil
			}
			return
		}
		op := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		op.err = l.send(op.recs)
		if op.err != nil {
			l.fails.Add(1)
			// A failed client is not reusable: its unacked window is
			// unknowable. Start the next op from a clean dial.
			if l.client != nil {
				_ = l.client.Close()
				l.client = nil
			}
		} else {
			l.sent.Add(uint64(len(op.recs)))
		}
		close(op.done)
	}
}

// send delivers one op's records and waits for the peer's cumulative
// ack, dialing the peer first if the link has no live client.
func (l *link) send(recs []outRec) error {
	if l.client == nil {
		c, err := wireclient.Dial(l.spec.Wire, l.opts)
		if err != nil {
			return errors.Join(ErrLinkDown, err)
		}
		l.client = c
	}
	for i := range recs {
		r := &recs[i]
		var err error
		if r.isObs {
			err = l.client.SendForwardObservation(r.f, &r.obs)
		} else {
			err = l.client.SendForwardInstance(r.f, &r.inst)
		}
		if err != nil {
			return errors.Join(ErrLinkDown, err)
		}
	}
	if err := l.client.Flush(); err != nil {
		return errors.Join(ErrLinkDown, err)
	}
	if err := l.client.Wait(); err != nil {
		return errors.Join(ErrLinkDown, err)
	}
	return nil
}
