package condition

import (
	"math/rand"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// differential_test.go cross-checks the parser, printer and evaluator on
// randomly generated condition ASTs: for every generated expression e,
// Parse(e.String()) must succeed and evaluate identically to e on random
// bindings (same truth value, or both erroring).

// exprGen generates random well-typed expressions. Arithmetic right
// operands are always leaves so the printed form reparses with identical
// associativity.
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) roles() string {
	if g.rng.Intn(2) == 0 {
		return "x"
	}
	return "y"
}

func (g *exprGen) attr() string {
	if g.rng.Intn(2) == 0 {
		return "a"
	}
	return "b"
}

func (g *exprGen) numLeaf() Term {
	switch g.rng.Intn(3) {
	case 0:
		return NumLit{V: float64(g.rng.Intn(21) - 10)}
	default:
		return AttrRef{Role: g.roles(), Name: g.attr()}
	}
}

func (g *exprGen) numTerm(depth int) Term {
	if depth <= 0 {
		return g.numLeaf()
	}
	switch g.rng.Intn(6) {
	case 0:
		return NumArith{L: g.numTerm(depth - 1), R: g.numLeaf(), Sub: g.rng.Intn(2) == 0}
	case 1:
		c, err := NewCall("avg", g.numTerm(depth-1), g.numLeaf())
		if err != nil {
			panic(err)
		}
		return c
	case 2:
		c, err := NewCall("abs", g.numTerm(depth-1))
		if err != nil {
			panic(err)
		}
		return c
	case 3:
		c, err := NewCall("dist", g.locTerm(depth-1), g.locTerm(depth-1))
		if err != nil {
			panic(err)
		}
		return c
	case 4:
		c, err := NewCall("duration", g.timeTerm(depth-1))
		if err != nil {
			panic(err)
		}
		return c
	default:
		return g.numLeaf()
	}
}

func (g *exprGen) timeLeaf() Term {
	switch g.rng.Intn(3) {
	case 0:
		start := timemodel.Tick(g.rng.Intn(100))
		return TimeLit{T: timemodel.MustBetween(start, start+timemodel.Tick(g.rng.Intn(20)))}
	default:
		parts := []TimePart{WholeTime, StartTime, EndTime}
		return TimeRef{Role: g.roles(), Part: parts[g.rng.Intn(len(parts))]}
	}
}

func (g *exprGen) timeTerm(depth int) Term {
	if depth <= 0 {
		return g.timeLeaf()
	}
	switch g.rng.Intn(4) {
	case 0:
		return TimeShift{T: g.timeTerm(depth - 1), D: NumLit{V: float64(g.rng.Intn(9))}, Neg: g.rng.Intn(2) == 0}
	case 1:
		c, err := NewCall("span", g.timeTerm(depth-1), g.timeLeaf())
		if err != nil {
			panic(err)
		}
		return c
	case 2:
		c, err := NewCall("earliest", g.timeTerm(depth-1), g.timeLeaf())
		if err != nil {
			panic(err)
		}
		return c
	default:
		return g.timeLeaf()
	}
}

func (g *exprGen) locLeaf() Term {
	switch g.rng.Intn(3) {
	case 0:
		c, err := NewCall("point",
			NumLit{V: float64(g.rng.Intn(21) - 10)},
			NumLit{V: float64(g.rng.Intn(21) - 10)})
		if err != nil {
			panic(err)
		}
		return c
	case 1:
		c, err := NewCall("rect",
			NumLit{V: float64(g.rng.Intn(10))},
			NumLit{V: float64(g.rng.Intn(10))},
			NumLit{V: float64(g.rng.Intn(10) + 11)},
			NumLit{V: float64(g.rng.Intn(10) + 11)})
		if err != nil {
			panic(err)
		}
		return c
	default:
		return LocRef{Role: g.roles()}
	}
}

func (g *exprGen) locTerm(depth int) Term {
	if depth <= 0 {
		return g.locLeaf()
	}
	switch g.rng.Intn(4) {
	case 0:
		c, err := NewCall("centroid", g.locTerm(depth-1), g.locLeaf())
		if err != nil {
			panic(err)
		}
		return c
	case 1:
		c, err := NewCall("hull", g.locTerm(depth-1), g.locLeaf(), g.locLeaf())
		if err != nil {
			panic(err)
		}
		return c
	default:
		return g.locLeaf()
	}
}

func (g *exprGen) predicate(depth int) Expr {
	switch g.rng.Intn(3) {
	case 0:
		ops := []RelOp{OpGt, OpGe, OpLt, OpLe, OpEq, OpNe}
		return CmpNum{L: g.numTerm(depth), Op: ops[g.rng.Intn(len(ops))], R: g.numTerm(depth)}
	case 1:
		ops := []timemodel.Operator{
			timemodel.OpBefore, timemodel.OpAfter, timemodel.OpDuring,
			timemodel.OpBegin, timemodel.OpEnd, timemodel.OpMeet,
			timemodel.OpOverlap, timemodel.OpEqualT,
		}
		return CmpTime{L: g.timeTerm(depth), Op: ops[g.rng.Intn(len(ops))], R: g.timeTerm(depth)}
	default:
		ops := []spatial.Operator{
			spatial.OpInside, spatial.OpOutside, spatial.OpJoint,
			spatial.OpEqualS, spatial.OpCovers,
		}
		return CmpLoc{L: g.locTerm(depth), Op: ops[g.rng.Intn(len(ops))], R: g.locTerm(depth)}
	}
}

func (g *exprGen) expr(depth int) Expr {
	if depth <= 0 {
		return g.predicate(1)
	}
	switch g.rng.Intn(5) {
	case 0:
		return And{L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 1:
		return Or{L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 2:
		return Not{X: g.expr(depth - 1)}
	default:
		return g.predicate(depth)
	}
}

// randomBinding builds a binding with both roles populated.
func randomBinding(rng *rand.Rand) Binding {
	mk := func(id string) event.Observation {
		start := timemodel.Tick(rng.Intn(100))
		occ := timemodel.MustBetween(start, start+timemodel.Tick(rng.Intn(30)))
		var loc spatial.Location
		if rng.Intn(2) == 0 {
			loc = spatial.AtPoint(float64(rng.Intn(41)-20), float64(rng.Intn(41)-20))
		} else {
			f, err := spatial.Rect(
				float64(rng.Intn(10)), float64(rng.Intn(10)),
				float64(rng.Intn(10)+11), float64(rng.Intn(10)+11))
			if err != nil {
				panic(err)
			}
			loc = spatial.InField(f)
		}
		return event.Observation{
			Mote: id, Sensor: "SR", Seq: 1,
			Time: occ, Loc: loc,
			Attrs: event.Attrs{
				"a": float64(rng.Intn(21) - 10),
				"b": float64(rng.Intn(21) - 10),
			},
		}
	}
	return Binding{"x": mk("X"), "y": mk("Y")}
}

// TestDifferentialParsePrintEval is the parser/printer/evaluator
// triangle check over 400 random expressions × 3 random bindings each.
func TestDifferentialParsePrintEval(t *testing.T) {
	rng := rand.New(rand.NewSource(20240611))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 400; trial++ {
		orig := g.expr(3)
		printed := orig.String()
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: generated expression does not reparse:\n%s\n%v", trial, printed, err)
		}
		if reparsed.String() != printed {
			t.Fatalf("trial %d: print not a fixpoint:\n %s\n %s", trial, printed, reparsed.String())
		}
		for bi := 0; bi < 3; bi++ {
			b := randomBinding(rng)
			v1, err1 := orig.Eval(b)
			v2, err2 := reparsed.Eval(b)
			if (err1 != nil) != (err2 != nil) {
				t.Fatalf("trial %d: error divergence on %s: %v vs %v", trial, printed, err1, err2)
			}
			if err1 == nil && v1 != v2 {
				t.Fatalf("trial %d: value divergence on %s: %v vs %v", trial, printed, v1, v2)
			}
		}
	}
}

// TestDifferentialRolesStable: Roles() of the reparsed expression matches
// the original.
func TestDifferentialRolesStable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 100; trial++ {
		orig := g.expr(2)
		reparsed, err := Parse(orig.String())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		a, b := orig.Roles(), reparsed.Roles()
		if len(a) != len(b) {
			t.Fatalf("trial %d: roles %v vs %v", trial, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: roles %v vs %v", trial, a, b)
			}
		}
	}
}
