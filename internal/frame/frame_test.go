package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("x"),
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 100_000),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	fr := NewReader(bytes.NewReader(stream), 0)
	for i, want := range payloads {
		got, n, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != HeaderSize+len(want) {
			t.Fatalf("frame %d: size %d, want %d", i, n, HeaderSize+len(want))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}
}

func TestWriteFrameMatchesAppendFrame(t *testing.T) {
	payload := []byte("same bytes either way")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), AppendFrame(nil, payload)) {
		t.Fatal("WriteFrame and AppendFrame disagree")
	}
}

func TestFrameTornHeader(t *testing.T) {
	stream := AppendFrame(nil, []byte("abc"))
	fr := NewReader(bytes.NewReader(stream[:HeaderSize-3]), 0)
	_, _, err := fr.Next()
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("torn header: err=%v, want ErrTorn", err)
	}
}

// TestFrameTornAtHeaderBoundary guards the nastiest tear: a stream cut
// exactly after the 8-byte header. io.ReadFull reports that as a bare
// io.EOF, and if Next wrapped it the tear would satisfy
// errors.Is(err, io.EOF) — the WAL would then mistake a dangling
// header for a clean segment end and append acked records after it.
func TestFrameTornAtHeaderBoundary(t *testing.T) {
	stream := AppendFrame(nil, []byte("abcdef"))
	fr := NewReader(bytes.NewReader(stream[:HeaderSize]), 0)
	_, _, err := fr.Next()
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("cut after header: err=%v, want ErrTorn", err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("cut after header: err=%v must not match io.EOF", err)
	}
}

func TestFrameTornPayload(t *testing.T) {
	stream := AppendFrame(nil, []byte("abcdef"))
	fr := NewReader(bytes.NewReader(stream[:len(stream)-2]), 0)
	_, _, err := fr.Next()
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("torn payload: err=%v, want ErrTorn", err)
	}
}

func TestFrameCorruptPayload(t *testing.T) {
	stream := AppendFrame(nil, []byte("abcdef"))
	stream[HeaderSize+2] ^= 0x01
	fr := NewReader(bytes.NewReader(stream), 0)
	_, _, err := fr.Next()
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: err=%v, want ErrChecksum", err)
	}
}

func TestFrameImplausibleLength(t *testing.T) {
	// Zero-length frame.
	zero := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	fr := NewReader(bytes.NewReader(zero), 0)
	if _, _, err := fr.Next(); !errors.Is(err, ErrLength) {
		t.Fatalf("zero length: err=%v, want ErrLength", err)
	}
	// Over the reader's max.
	big := AppendFrame(nil, bytes.Repeat([]byte{1}, 100))
	fr = NewReader(bytes.NewReader(big), 64)
	if _, _, err := fr.Next(); !errors.Is(err, ErrLength) {
		t.Fatalf("oversized: err=%v, want ErrLength", err)
	}
}

func TestReaderDetach(t *testing.T) {
	stream := AppendFrame(nil, []byte("first"))
	stream = AppendFrame(stream, []byte("second"))
	fr := NewReader(bytes.NewReader(stream), 0)
	first, _, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	fr.Detach()
	second, _, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The detached buffer must survive the next read.
	if string(first) != "first" || string(second) != "second" {
		t.Fatalf("detach violated: %q / %q", first, second)
	}
}

func TestReaderReusesBufferWithoutDetach(t *testing.T) {
	stream := AppendFrame(nil, []byte("aaaa"))
	stream = AppendFrame(stream, []byte("bbbb"))
	fr := NewReader(bytes.NewReader(stream), 0)
	first, _, _ := fr.Next()
	firstCopy := string(first)
	second, _, _ := fr.Next()
	if &first[0] != &second[0] {
		t.Fatalf("expected buffer reuse without Detach")
	}
	_ = firstCopy
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), uint8(0))
	f.Add([]byte{}, uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 300), uint8(2))
	f.Fuzz(func(t *testing.T, payload []byte, mutate uint8) {
		if len(payload) == 0 {
			return
		}
		enc := AppendFrame(nil, payload)
		switch mutate % 3 {
		case 0:
			// Intact frame: must decode byte-identical.
			fr := NewReader(bytes.NewReader(enc), 0)
			got, n, err := fr.Next()
			if err != nil {
				t.Fatalf("intact frame rejected: %v", err)
			}
			if n != len(enc) || !bytes.Equal(got, payload) {
				t.Fatalf("decode mismatch")
			}
			if _, _, err := fr.Next(); !errors.Is(err, io.EOF) {
				t.Fatalf("expected EOF, got %v", err)
			}
		case 1:
			// Torn frame: truncate anywhere short of the end.
			cut := int(mutate) % len(enc)
			fr := NewReader(bytes.NewReader(enc[:cut]), 0)
			_, _, err := fr.Next()
			if cut == 0 {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("empty stream: err=%v, want io.EOF", err)
				}
			} else if err == nil {
				t.Fatalf("torn frame (cut at %d) accepted", cut)
			} else if errors.Is(err, io.EOF) {
				t.Fatalf("torn frame (cut at %d): err=%v must not match io.EOF", cut, err)
			}
		case 2:
			// Corrupt frame: flip one payload bit.
			i := HeaderSize + int(mutate)%len(payload)
			enc[i] ^= 0x40
			fr := NewReader(bytes.NewReader(enc), 0)
			if _, _, err := fr.Next(); err == nil {
				t.Fatalf("corrupt frame accepted")
			}
		}
	})
}

func TestProtocolRoundTrips(t *testing.T) {
	if err := ParseHello(AppendHello(nil)); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if err := ParseHello([]byte("GET / HTTP/1.1")); err == nil {
		t.Fatal("HTTP request accepted as hello")
	}
	bad := AppendHello(nil)
	bad[5] = 99
	if err := ParseHello(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err=%v, want ErrVersion", err)
	}

	w, b, err := ParseWelcome(AppendWelcome(nil, 16384, 256))
	if err != nil || w != 16384 || b != 256 {
		t.Fatalf("welcome: %d,%d,%v", w, b, err)
	}
	if _, _, err := ParseWelcome(AppendWelcome(nil, 0, 256)); err == nil {
		t.Fatal("zero window accepted")
	}

	n, err := ParseAck(AppendAck(nil, 123456789))
	if err != nil || n != 123456789 {
		t.Fatalf("ack: %d,%v", n, err)
	}
	if _, err := ParseAck([]byte{MsgAck}); err == nil {
		t.Fatal("truncated ack accepted")
	}

	ww, err := ParseWindow(AppendWindow(nil, 4096))
	if err != nil || ww != 4096 {
		t.Fatalf("window: %d,%v", ww, err)
	}
	if _, err := ParseWindow(AppendWindow(nil, 0)); err == nil {
		t.Fatal("zero window resize accepted")
	}

	msg, err := ParseError(AppendError(nil, "boom"))
	if err != nil || msg != "boom" {
		t.Fatalf("error: %q,%v", msg, err)
	}
}

func TestCongestionAIMD(t *testing.T) {
	c := newCongestion(1024, 64, 10*time.Microsecond, 1*time.Microsecond)

	// A slow batch halves the window.
	w, changed := c.observe(100, 100*100*time.Microsecond)
	if !changed || w != 512 {
		t.Fatalf("after slow batch: w=%d changed=%v, want 512,true", w, changed)
	}
	// Repeated slowness floors at min.
	for i := 0; i < 10; i++ {
		w, _ = c.observe(100, 100*100*time.Microsecond)
	}
	if w != 64 {
		t.Fatalf("floor: w=%d, want 64", w)
	}
	// At the floor, more slowness changes nothing.
	if _, changed := c.observe(100, 100*100*time.Microsecond); changed {
		t.Fatal("window change signaled at floor")
	}
	// A streak of fast batches grows additively (step = 1024/8 = 128).
	var grew bool
	for i := 0; i < resumeStreak; i++ {
		w, grew = c.observe(100, 10*time.Nanosecond)
	}
	if !grew || w != 64+128 {
		t.Fatalf("after fast streak: w=%d grew=%v, want 192,true", w, grew)
	}
	// Recovery is capped at the initial window.
	for i := 0; i < 100; i++ {
		w, _ = c.observe(100, 10*time.Nanosecond)
	}
	if w != 1024 {
		t.Fatalf("recovery cap: w=%d, want 1024", w)
	}
	// Middling latency neither shrinks nor grows, and resets the streak.
	if _, changed := c.observe(100, 100*5*time.Microsecond); changed {
		t.Fatal("middling latency changed the window")
	}
}
