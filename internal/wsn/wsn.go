// Package wsn simulates the sensor and actor network substrate of the CPS
// architecture (Tan, Vuran, Goddard, ICDCSW 2009, Section 3): sensor
// motes, actor motes, sink nodes, and the multi-hop wireless links between
// them ("sensor and actor motes can also serve as repeaters to relay and
// aggregate packets from other motes").
//
// The radio model is parameterized by communication range, per-hop delay,
// and per-hop loss probability; routing is a shortest-hop tree rooted at
// the sinks. These three parameters are exactly what the paper's future
// work (event detection latency analysis) depends on, so they are
// first-class here.
package wsn

import (
	"errors"
	"fmt"
	"sort"

	"github.com/stcps/stcps/internal/sim"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Network errors.
var (
	// ErrDuplicateID is returned when a mote or sink id is reused.
	ErrDuplicateID = errors.New("wsn: duplicate id")
	// ErrUnknownID is returned when an id cannot be resolved.
	ErrUnknownID = errors.New("wsn: unknown id")
	// ErrUnrouted is returned when sending from or to a mote with no
	// route to a sink.
	ErrUnrouted = errors.New("wsn: mote has no route to a sink")
	// ErrNoHandler is returned when a message arrives at a node without
	// a handler.
	ErrNoHandler = errors.New("wsn: destination has no handler")
)

// Radio holds the wireless channel model.
type Radio struct {
	// Range is the maximum link distance.
	Range float64
	// HopDelay is the per-hop transmission delay in ticks.
	HopDelay timemodel.Tick
	// LossRate is the independent per-hop loss probability in [0, 1].
	LossRate float64
}

// Validate checks the radio parameters.
func (r Radio) Validate() error {
	if r.Range <= 0 {
		return fmt.Errorf("wsn: radio range %g must be positive", r.Range)
	}
	if r.HopDelay < 0 {
		return fmt.Errorf("wsn: hop delay %d must be non-negative", r.HopDelay)
	}
	if r.LossRate < 0 || r.LossRate > 1 {
		return fmt.Errorf("wsn: loss rate %g outside [0,1]", r.LossRate)
	}
	return nil
}

// Handler receives a delivered payload. from is the original sender's id.
type Handler func(from string, payload any)

// Mote is a sensor or actor mote: position plus routing state filled by
// BuildRoutes.
type Mote struct {
	// ID identifies the mote MT_id.
	ID string
	// Pos is the mote's fixed position.
	Pos spatial.Point
	// Parent is the next hop toward the sink ("" before routing or when
	// unreachable; the sink id on the last hop).
	Parent string
	// SinkID is the sink this mote routes to ("" when unreachable).
	SinkID string
	// Hops is the hop count to the sink (0 when unreachable).
	Hops int

	handler Handler
}

// Stats counts radio activity.
type Stats struct {
	// Sent counts originated messages.
	Sent uint64
	// Delivered counts messages that reached their destination.
	Delivered uint64
	// Dropped counts messages lost on some hop.
	Dropped uint64
	// HopsTraveled counts total hop transmissions (including those of
	// dropped messages up to the loss point).
	HopsTraveled uint64
}

// Network is the simulated sensor/actor network. It is not safe for
// concurrent use: everything runs on the simulation goroutine.
type Network struct {
	sched *sim.Scheduler
	radio Radio
	motes map[string]*Mote
	sinks map[string]*sinkEndpoint
	stats Stats
}

type sinkEndpoint struct {
	id      string
	pos     spatial.Point
	handler Handler
}

// New creates a network with the given radio model.
func New(sched *sim.Scheduler, radio Radio) (*Network, error) {
	if err := radio.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		sched: sched,
		radio: radio,
		motes: make(map[string]*Mote),
		sinks: make(map[string]*sinkEndpoint),
	}, nil
}

// Radio returns the channel model.
func (n *Network) Radio() Radio { return n.radio }

// SetLossRate changes the per-hop loss probability mid-run. Experiments
// use it to inject transient link failures (loss 1.0 = total outage) and
// recoveries.
func (n *Network) SetLossRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("wsn: loss rate %g outside [0,1]", rate)
	}
	n.radio.LossRate = rate
	return nil
}

// Stats returns a copy of the radio statistics.
func (n *Network) Stats() Stats { return n.stats }

// AddMote registers a mote at a position and returns it.
func (n *Network) AddMote(id string, pos spatial.Point) (*Mote, error) {
	if id == "" {
		return nil, fmt.Errorf("wsn: mote needs an id")
	}
	if _, ok := n.motes[id]; ok {
		return nil, fmt.Errorf("mote %q: %w", id, ErrDuplicateID)
	}
	if _, ok := n.sinks[id]; ok {
		return nil, fmt.Errorf("mote %q collides with sink: %w", id, ErrDuplicateID)
	}
	m := &Mote{ID: id, Pos: pos}
	n.motes[id] = m
	return m, nil
}

// AddSink registers a sink node at a position with its uplink handler
// (called when mote traffic arrives).
func (n *Network) AddSink(id string, pos spatial.Point, h Handler) error {
	if id == "" {
		return fmt.Errorf("wsn: sink needs an id")
	}
	if _, ok := n.sinks[id]; ok {
		return fmt.Errorf("sink %q: %w", id, ErrDuplicateID)
	}
	if _, ok := n.motes[id]; ok {
		return fmt.Errorf("sink %q collides with mote: %w", id, ErrDuplicateID)
	}
	n.sinks[id] = &sinkEndpoint{id: id, pos: pos, handler: h}
	return nil
}

// SetMoteHandler installs the downlink handler on a mote (used by actor
// motes receiving actuator commands).
func (n *Network) SetMoteHandler(id string, h Handler) error {
	m, ok := n.motes[id]
	if !ok {
		return fmt.Errorf("mote %q: %w", id, ErrUnknownID)
	}
	m.handler = h
	return nil
}

// SetSinkHandler replaces a sink's uplink handler.
func (n *Network) SetSinkHandler(id string, h Handler) error {
	s, ok := n.sinks[id]
	if !ok {
		return fmt.Errorf("sink %q: %w", id, ErrUnknownID)
	}
	s.handler = h
	return nil
}

// Mote returns a registered mote.
func (n *Network) Mote(id string) (*Mote, error) {
	m, ok := n.motes[id]
	if !ok {
		return nil, fmt.Errorf("mote %q: %w", id, ErrUnknownID)
	}
	return m, nil
}

// Motes returns all mote ids, sorted.
func (n *Network) Motes() []string {
	out := make([]string, 0, len(n.motes))
	for id := range n.motes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// positionOf resolves any node id (mote or sink) to its position.
func (n *Network) positionOf(id string) (spatial.Point, bool) {
	if m, ok := n.motes[id]; ok {
		return m.Pos, true
	}
	if s, ok := n.sinks[id]; ok {
		return s.pos, true
	}
	return spatial.Point{}, false
}

// linked reports whether two node ids are within radio range.
func (n *Network) linked(a, b string) bool {
	pa, oka := n.positionOf(a)
	pb, okb := n.positionOf(b)
	return oka && okb && pa.Dist(pb) <= n.radio.Range+spatial.Epsilon
}

// Neighbors returns the node ids (motes and sinks) within radio range of
// the given node, sorted.
func (n *Network) Neighbors(id string) []string {
	var out []string
	for mid := range n.motes {
		if mid != id && n.linked(id, mid) {
			out = append(out, mid)
		}
	}
	for sid := range n.sinks {
		if sid != id && n.linked(id, sid) {
			out = append(out, sid)
		}
	}
	sort.Strings(out)
	return out
}

// BuildRoutes computes a shortest-hop tree from every mote to its nearest
// sink (multi-source BFS; ties break toward the lexicographically smaller
// parent for determinism). It returns the ids of unreachable motes, if
// any, as an error wrapping ErrUnrouted; reachable motes are still routed.
func (n *Network) BuildRoutes() error {
	// Reset.
	for _, m := range n.motes {
		m.Parent, m.SinkID, m.Hops = "", "", 0
	}
	type qe struct{ id string }
	dist := make(map[string]int, len(n.motes)+len(n.sinks))
	via := make(map[string]string, len(n.motes))
	sinkOf := make(map[string]string, len(n.motes))

	frontier := make([]string, 0, len(n.sinks))
	for sid := range n.sinks {
		frontier = append(frontier, sid)
		dist[sid] = 0
		sinkOf[sid] = sid
	}
	sort.Strings(frontier)

	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			for _, nb := range n.Neighbors(cur) {
				if _, seen := dist[nb]; seen {
					continue
				}
				if _, isSink := n.sinks[nb]; isSink {
					continue
				}
				dist[nb] = dist[cur] + 1
				via[nb] = cur
				sinkOf[nb] = sinkOf[cur]
				next = append(next, nb)
			}
		}
		sort.Strings(next)
		frontier = next
	}

	var unreachable []string
	for id, m := range n.motes {
		d, ok := dist[id]
		if !ok {
			unreachable = append(unreachable, id)
			continue
		}
		m.Hops = d
		m.Parent = via[id]
		m.SinkID = sinkOf[id]
	}
	if len(unreachable) > 0 {
		sort.Strings(unreachable)
		return fmt.Errorf("motes %v: %w", unreachable, ErrUnrouted)
	}
	return nil
}

// pathUp returns the hop sequence from a mote to its sink (excluding the
// mote itself, including the sink).
func (n *Network) pathUp(moteID string) ([]string, error) {
	m, err := n.Mote(moteID)
	if err != nil {
		return nil, err
	}
	if m.SinkID == "" {
		return nil, fmt.Errorf("mote %q: %w", moteID, ErrUnrouted)
	}
	var path []string
	cur := m
	for {
		path = append(path, cur.Parent)
		if cur.Parent == m.SinkID {
			return path, nil
		}
		nxt, ok := n.motes[cur.Parent]
		if !ok {
			return nil, fmt.Errorf("broken route at %q: %w", cur.Parent, ErrUnrouted)
		}
		cur = nxt
	}
}

// SendUp transmits a payload from a mote to its sink, hop by hop, with
// per-hop delay and loss. Delivery invokes the sink handler at the arrival
// tick. The error reports routing problems only; loss is silent (counted
// in Stats), exactly like a real radio.
func (n *Network) SendUp(moteID string, payload any) error {
	path, err := n.pathUp(moteID)
	if err != nil {
		return err
	}
	sink := n.sinks[path[len(path)-1]]
	if sink.handler == nil {
		return fmt.Errorf("sink %q: %w", sink.id, ErrNoHandler)
	}
	n.stats.Sent++
	n.transmit(path, 0, moteID, payload, func(from string, p any) {
		sink.handler(from, p)
	})
	return nil
}

// SendDown transmits a payload from a sink to a mote along the reverse of
// the mote's uplink path (used by dispatch nodes to reach actor motes).
func (n *Network) SendDown(sinkID, moteID string, payload any) error {
	if _, ok := n.sinks[sinkID]; !ok {
		return fmt.Errorf("sink %q: %w", sinkID, ErrUnknownID)
	}
	m, err := n.Mote(moteID)
	if err != nil {
		return err
	}
	if m.handler == nil {
		return fmt.Errorf("mote %q: %w", moteID, ErrNoHandler)
	}
	up, err := n.pathUp(moteID)
	if err != nil {
		return err
	}
	if up[len(up)-1] != sinkID {
		return fmt.Errorf("mote %q routes to sink %q, not %q: %w", moteID, up[len(up)-1], sinkID, ErrUnrouted)
	}
	// Reverse path: sink -> ... -> mote has the same hop count.
	down := make([]string, 0, len(up))
	for i := len(up) - 2; i >= 0; i-- {
		down = append(down, up[i])
	}
	down = append(down, moteID)
	n.stats.Sent++
	n.transmit(down, 0, sinkID, payload, func(from string, p any) {
		m.handler(from, p)
	})
	return nil
}

// transmit recursively schedules hops; deliver runs at the final arrival.
func (n *Network) transmit(path []string, hop int, origin string, payload any, deliver Handler) {
	if hop >= len(path) {
		n.stats.Delivered++
		deliver(origin, payload)
		return
	}
	// Sample loss for this hop.
	if n.radio.LossRate > 0 && n.sched.RNG().Float64() < n.radio.LossRate {
		n.stats.Dropped++
		return
	}
	n.stats.HopsTraveled++
	n.sched.After(n.radio.HopDelay, func() {
		n.transmit(path, hop+1, origin, payload, deliver)
	})
}
