#!/usr/bin/env bash
# Crash-recovery soak: start stcpsd with a WAL directory, ingest a
# stream, SIGKILL it mid-stream, restart it over the same WAL, feed the
# rest, and diff /query output against an uninterrupted run. The same
# scenario runs in-process as `go test -run TestCrashRecovery ./...`;
# this script exercises it against the real built binary over real
# pipes, signals and HTTP.
set -euo pipefail
cd "$(dirname "$0")/.."

LINES=${SOAK_LINES:-400}
HALF=$((LINES / 2))
PORT_CLEAN=${SOAK_PORT_CLEAN:-18473}
PORT_CRASH=${SOAK_PORT_CRASH:-18474}

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

echo "soak: building stcpsd"
go build -o "$work/stcpsd" ./cmd/stcpsd

cat > "$work/events.json" <<'EOF'
[
  {"id": "E.hot", "layer": "cyber",
   "roles": [{"name": "x", "source": "S.temp", "window": 2, "maxAge": 100}],
   "when": "x.temp > 30"},
  {"id": "E.warm", "layer": "cyber",
   "roles": [{"name": "x", "source": "S.temp", "window": 2}],
   "when": "x.temp > 20", "interval": true}
]
EOF

echo "soak: generating $LINES-line feed"
go run scripts/genfeed.go -n "$LINES" > "$work/feed.jsonl"
head -n "$HALF" "$work/feed.jsonl" > "$work/feed.first"
tail -n +"$((HALF + 1))" "$work/feed.jsonl" > "$work/feed.rest"

# ingested_count PORT -> the daemon's /stats ingested counter (no jq:
# runners and laptops both have grep).
ingested_count() {
  curl -sf "http://127.0.0.1:$1/stats" 2>/dev/null | grep -o '"ingested":[0-9]*' | head -1 | cut -d: -f2 || true
}

# wait_ingested PORT N: poll /stats until the daemon has ingested N.
wait_ingested() {
  local port=$1 want=$2 i
  for i in $(seq 1 600); do
    if [ "$(ingested_count "$port")" = "$want" ]; then return 0; fi
    sleep 0.05
  done
  echo "soak: daemon on :$port never reached ingested=$want (got '$(ingested_count "$port")')" >&2
  return 1
}

# start_daemon WALDIR PORT FIFO LOG: run stcpsd reading from FIFO and
# leave its pid in $daemon_pid. (No command substitution: the FIFO open
# blocks until a writer appears, which would hang a $() capture.)
daemon_pid=""
start_daemon() {
  local waldir=$1 port=$2 fifo=$3 log=$4
  "$work/stcpsd" -events "$work/events.json" \
    -wal-dir "$waldir" -fsync always -http "127.0.0.1:$port" \
    < "$fifo" > /dev/null 2> "$log" &
  daemon_pid=$!
  pids+=("$daemon_pid")
}

query() { curl -sf "http://127.0.0.1:$1/query"; }

echo "soak: uninterrupted reference run"
mkfifo "$work/pipe_clean"
start_daemon "$work/wal_clean" "$PORT_CLEAN" "$work/pipe_clean" "$work/clean.log"
clean_pid=$daemon_pid
exec 3> "$work/pipe_clean"
cat "$work/feed.jsonl" >&3
wait_ingested "$PORT_CLEAN" "$LINES"
query "$PORT_CLEAN" > "$work/clean.query.json"
exec 3>&-
wait "$clean_pid"

echo "soak: crash run — SIGKILL mid-stream after $HALF lines"
mkfifo "$work/pipe_crash"
start_daemon "$work/wal_crash" "$PORT_CRASH" "$work/pipe_crash" "$work/crash.log"
crash_pid=$daemon_pid
exec 4> "$work/pipe_crash"
cat "$work/feed.first" >&4
wait_ingested "$PORT_CRASH" "$HALF"
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true
exec 4>&-
rm -f "$work/pipe_crash"

echo "soak: restart over the same WAL, feed the rest"
mkfifo "$work/pipe_restart"
start_daemon "$work/wal_crash" "$PORT_CRASH" "$work/pipe_restart" "$work/restart.log"
restart_pid=$daemon_pid
exec 5> "$work/pipe_restart"
cat "$work/feed.rest" >&5
wait_ingested "$PORT_CRASH" "$((LINES - HALF))"
query "$PORT_CRASH" > "$work/crash.query.json"
exec 5>&-
wait "$restart_pid"

grep -q 'stcpsd: wal' "$work/restart.log" || {
  echo "soak: restart log missing WAL recovery line:" >&2
  cat "$work/restart.log" >&2
  exit 1
}

echo "soak: diffing /query output"
if ! diff -u "$work/clean.query.json" "$work/crash.query.json"; then
  echo "soak: FAIL — post-recovery /query differs from uninterrupted run" >&2
  exit 1
fi

recovered=$(grep -o 'recovered=[0-9]*' "$work/restart.log" | head -1)
echo "soak: OK — /query byte-identical after SIGKILL + recovery ($recovered)"
