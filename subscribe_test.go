package stcps

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/stcps/stcps/internal/event"
)

// subTestDetect declares the pass-through detector the subscription
// tests observe: one instance per observation, deterministically.
func subTestDetect(t *testing.T, eng *Engine) {
	t.Helper()
	if err := eng.Detect(LayerSensor, EventSpec{
		ID:    "E.obs",
		Roles: []Role{{Name: "x", Source: "S", Window: 1}},
		When:  "x.v > -1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Detect(LayerSensor, EventSpec{
		ID:    "E.high",
		Roles: []Role{{Name: "x", Source: "S", Window: 1}},
		When:  "x.v > 0.5",
	}); err != nil {
		t.Fatal(err)
	}
}

// fuzzObs builds the deterministic fuzzed observation stream.
func fuzzObs(seed int64, n int) []Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, n)
	for i := range out {
		out[i] = Observation{
			Mote:   "M",
			Sensor: "S",
			Seq:    uint64(i),
			Time:   At(Tick(i + 1)),
			Loc:    AtPoint(rng.Float64()*100, rng.Float64()*100),
			Attrs:  Attrs{"v": rng.Float64()},
		}
	}
	return out
}

// encodeAll renders instances in the canonical wire form for the
// byte-identical comparison.
func encodeAll(t *testing.T, insts []Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range insts {
		data, err := event.EncodeInstance(insts[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestSubscriberDifferentialVsQueryST is the acceptance differential:
// for a fuzzed stream, the set of instances a subscriber receives —
// catch-up replay plus live push, across a forced disconnect/reconnect
// mid-stream — is byte-identical to a QueryST of the same
// event/region/window on an uninterrupted run. No gaps, no duplicates.
func TestSubscriberDifferentialVsQueryST(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		const n = 400
		stream := fuzzObs(seed, n)
		region := func() *Location {
			f, err := Rect(25, 25, 75, 75)
			if err != nil {
				t.Fatal(err)
			}
			loc := InField(f)
			return &loc
		}()
		q := Query{Event: "E.obs", Region: region, HasTime: true, From: 100, To: 350}

		// Uninterrupted oracle run.
		oracleEng, err := NewEngine(EngineConfig{Observer: "X", WithStore: true})
		if err != nil {
			t.Fatal(err)
		}
		subTestDetect(t, oracleEng)
		for i := range stream {
			if _, err := oracleEng.Observe(stream[i]); err != nil {
				t.Fatal(err)
			}
		}
		oracleEng.Flush(Tick(n + 1))
		oracleRes, err := oracleEng.QueryST(q.Spec())
		if err != nil {
			t.Fatal(err)
		}
		oracle := encodeAll(t, oracleRes.Instances)
		if len(oracleRes.Instances) == 0 {
			t.Fatalf("seed %d: oracle query matched nothing — test stream too narrow", seed)
		}

		// Subscriber run: same stream, with a disconnect/reconnect.
		eng, err := NewEngine(EngineConfig{Observer: "X", WithStore: true})
		if err != nil {
			t.Fatal(err)
		}
		subTestDetect(t, eng)
		spec := SubscriptionSpec{
			Event: "E.obs", Region: region,
			HasTime: true, From: 100, To: 350,
			Buffer: 2 * n, Replay: true,
		}
		feed := func(from, to int) {
			for i := from; i < to; i++ {
				if _, err := eng.Observe(stream[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		drainAll := func(s *Subscription) []SubDelivery {
			var out []SubDelivery
			for {
				d, ok, err := s.Poll()
				if err != nil {
					t.Fatalf("seed %d: Poll: %v", seed, err)
				}
				if !ok {
					return out
				}
				out = append(out, d)
			}
		}

		feed(0, n/4) // history before the subscriber exists
		s1, err := eng.Subscribe(spec)
		if err != nil {
			t.Fatal(err)
		}
		feed(n/4, n/2) // live while connected
		got := drainAll(s1)
		s1.Close() // forced disconnect
		var cursor string
		if len(got) > 0 {
			last := got[len(got)-1]
			if !last.HasCursor {
				t.Fatalf("seed %d: delivery without cursor on a store engine", seed)
			}
			cursor = fmt.Sprintf("%d", last.Cursor)
		}
		feed(n/2, 3*n/4) // missed while disconnected
		s2, err := eng.Subscribe(SubscriptionSpec{
			Event: spec.Event, Region: spec.Region,
			HasTime: spec.HasTime, From: spec.From, To: spec.To,
			Buffer: spec.Buffer, Replay: true, Cursor: cursor,
		})
		if err != nil {
			t.Fatal(err)
		}
		feed(3*n/4, n) // live again
		eng.Flush(Tick(n + 1))
		got = append(got, drainAll(s2)...)
		s2.Close()

		received := make([]Instance, len(got))
		for i := range got {
			received[i] = got[i].Inst
		}
		if gotB := encodeAll(t, received); !bytes.Equal(gotB, oracle) {
			t.Fatalf("seed %d: subscriber stream diverges from uninterrupted QueryST\nsubscriber (%d insts):\n%soracle (%d insts):\n%s",
				seed, len(received), gotB, len(oracleRes.Instances), oracle)
		}
		if st := eng.SubscriptionStats(); st.Dropped != 0 {
			t.Fatalf("seed %d: %d deliveries dropped — buffer sized wrong for the test", seed, st.Dropped)
		}
	}
}

// TestSubscribeShardedEngine checks live push from worker goroutines
// and the store cursor on deliveries.
func TestSubscribeShardedEngine(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Observer: "X", Workers: 4, WithStore: true})
	if err != nil {
		t.Fatal(err)
	}
	subTestDetect(t, eng)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	s, err := eng.Subscribe(SubscriptionSpec{Event: "E.obs", Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	stream := fuzzObs(7, 200)
	for i := range stream {
		if _, err := eng.Observe(stream[i]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	var got []SubDelivery
	for {
		d, ok, err := s.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !d.HasCursor {
			t.Fatal("sharded store engine delivered without cursor")
		}
		got = append(got, d)
	}
	if len(got) != 200 {
		t.Fatalf("subscriber got %d deliveries, want 200", len(got))
	}
	eng.Close(201)
}

// TestSubscribeWithoutStore: live push works, cursors are absent, and
// catch-up is refused.
func TestSubscribeWithoutStore(t *testing.T) {
	var emitted []Instance
	eng, err := NewEngine(EngineConfig{Observer: "X", OnInstance: func(in Instance) { emitted = append(emitted, in) }})
	if err != nil {
		t.Fatal(err)
	}
	subTestDetect(t, eng)
	if _, err := eng.Subscribe(SubscriptionSpec{Event: "E.obs", Replay: true}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Replay without store = %v, want ErrNoStore", err)
	}
	s, err := eng.Subscribe(SubscriptionSpec{Event: "E.obs"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Observe(fuzzObs(3, 1)[0]); err != nil {
		t.Fatal(err)
	}
	d, ok, err := s.Poll()
	if err != nil || !ok {
		t.Fatalf("Poll = (%v, %v)", ok, err)
	}
	if d.HasCursor {
		t.Fatal("store-less delivery claims a cursor")
	}
	if d.Inst.Event != "E.obs" {
		t.Fatalf("delivered %q, want E.obs", d.Inst.Event)
	}
	obsEmitted := 0
	for _, in := range emitted {
		if in.Event == "E.obs" {
			obsEmitted++
		}
	}
	if obsEmitted != 1 {
		t.Fatalf("OnInstance saw %d E.obs instances, want 1", obsEmitted)
	}
	if !eng.Unsubscribe(s.ID()) {
		t.Fatal("Unsubscribe lost the subscription")
	}
}

// TestConcurrentIngestFlushQuerySubscribe is the -race satellite: one
// producer ingesting then flushing, while HTTP-handler-shaped readers
// run QueryST/Stats and subscribers join, receive and leave — the
// documented concurrency contract of Drain/Flush.
func TestConcurrentIngestFlushQuerySubscribe(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Observer: "X", Workers: 4, WithStore: true})
	if err != nil {
		t.Fatal(err)
	}
	subTestDetect(t, eng)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	stream := fuzzObs(9, n)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: combined queries and stats, as the HTTP handlers would.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.QueryST(Query{Event: "E.obs", Limit: 10}.Spec()); err != nil {
					t.Error(err)
					return
				}
				_ = eng.Stats()
				_ = eng.StoreStats()
				_ = eng.SubscriptionStats()
				_ = eng.SubscriberStats()
			}
		}()
	}
	// Subscribers joining and leaving, some with catch-up replay.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := eng.Subscribe(SubscriptionSpec{Event: "E.obs", Replay: c == 0, Buffer: 64})
				if err != nil {
					t.Error(err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				for {
					if _, err := s.Next(ctx); err != nil {
						break
					}
				}
				cancel()
				s.Close()
			}
		}(c)
	}

	// The single producer: ingest everything, then Flush per contract.
	for i := range stream {
		if _, err := eng.Observe(stream[i]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush(Tick(n + 1))
	close(stop)
	wg.Wait()
}
