// Command benchdiff is the CI benchmark regression gate: it compares
// the speedup fields of a freshly generated edlbench artifact
// (BENCH_2.json through BENCH_6.json) against the committed baseline
// and fails when any speedup regressed by more than the allowed
// fraction. As a smoke check it also fails outright when a
// throughput-carrying row of the current artifact reports zero obs/s,
// which a speedup ratio alone can mask. The E15 store-contention, E16
// tiered-storage and E17 cluster sections gate on absolute floors
// instead (see e15Failures / e16Failures / e17Failures): E15's
// tail-latency speedup is too scheduler-dependent for a relative rule,
// and E16's / E17's gates are correctness and liveness conditions, not
// ratios.
//
// Speedups (indexed-query-vs-scan, planned-join-vs-naive) are ratios of
// two measurements taken on the same machine in the same run, so they
// transfer across hardware far better than absolute ns/op numbers — a
// 170x speedup that drops to 40x flags a lost index no matter how fast
// the runner is, while both absolute timings may halve together on a
// faster machine without meaning anything.
//
// Usage:
//
//	benchdiff -baseline BENCH_2.json -current fresh/BENCH_2.json
//	benchdiff -baseline BENCH_3.json -current fresh/BENCH_3.json -max-regress 0.5
//
// Exit status 1 on regression (or a baseline metric missing from the
// current artifact), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// artifact is the subset of the edlbench JSON schema the gate compares.
type artifact struct {
	Schema string `json:"schema"`
	E9     []struct {
		Instances int     `json:"instances"`
		Queries   int     `json:"queries"`
		Mode      string  `json:"mode"`
		Speedup   float64 `json:"speedup"`
	} `json:"e9"`
	E10 []struct {
		Mode    string  `json:"mode"`
		Roles   int     `json:"roles"`
		Window  int     `json:"window"`
		Speedup float64 `json:"speedup"`
	} `json:"e10"`
	E13 []struct {
		Subs    int     `json:"subs"`
		Mode    string  `json:"mode"`
		Speedup float64 `json:"speedup"`
	} `json:"e13"`
	E14 []struct {
		Mode      string  `json:"mode"`
		Records   int     `json:"records"`
		RecPerSec float64 `json:"recPerSec"`
		Speedup   float64 `json:"speedup"`
	} `json:"e14"`
	E15 *struct {
		Contend []struct {
			Mode         string  `json:"mode"`
			Readers      int     `json:"readers"`
			IngestPerSec float64 `json:"ingestPerSec"`
		} `json:"contend"`
		IngestLoadRatio   float64 `json:"ingestLoadRatio"`
		AuditLocksPerPage float64 `json:"auditLocksPerPage"`
		AuditPages        uint64  `json:"auditPages"`
		P99Speedup        float64 `json:"p99Speedup"`
	} `json:"e15"`
	E16 *struct {
		Segments       int     `json:"segments"`
		SpilledPerSec  float64 `json:"spilledPerSec"`
		ColdP99Us      float64 `json:"coldP99Us"`
		WalkPages      int     `json:"walkPages"`
		WalkMismatches int     `json:"walkMismatches"`
	} `json:"e16"`
	E17 *struct {
		ForwardAcks     int     `json:"forwardAcks"`
		ReplSamples     int     `json:"replSamples"`
		ForwardAckP99Us float64 `json:"forwardAckP99Us"`
		FailoverGapMs   float64 `json:"failoverGapMs"`
		Reroutes        uint64  `json:"reroutes"`
		GatherInstances int     `json:"gatherInstances"`
		Mismatches      int     `json:"mismatches"`
	} `json:"e17"`
}

// E15 acceptance floors. The contended p99 speedup is a tail-latency
// ratio and swings by an order of magnitude across runs even on one
// machine (the locked mode's convoy length is scheduler-dependent), so
// E15 gates on absolute floors instead of the relative-regression rule
// used for the stable median-ratio experiments: the lock-free plane
// must beat the monolithic lock by at least e15MinSpeedup at p99 under
// the full reader population, ingest under load must stay within 20%
// of reader-free, and the quiesced replay sweep must take zero
// index-lock acquisitions per page.
const (
	e15MinSpeedup     = 5.0
	e15MinIngestRatio = 0.8
)

// E16 acceptance floors. The tiered-storage experiment gates on
// absolute correctness and liveness floors, not relative ratios: the
// run must actually produce cold segments, spill at a nonzero rate,
// and return zero mismatched pages on the merged cursor walk against
// the unevicted oracle. The cold-query p99 ceiling is deliberately
// generous — it exists to catch an accidental O(whole-directory) scan
// regression (orders of magnitude), not scheduler noise.
const e16MaxColdP99Us = 250_000.0

// E17 acceptance floors. The cluster experiment gates on absolute
// correctness and liveness conditions: forwards and replication pairs
// must actually have happened, the kill must have forced at least one
// re-route, the scatter-gather differential must match the single-node
// oracle exactly, and the failover gap and forward-ack p99 ceilings
// catch order-of-magnitude availability regressions (a gap that grows
// past seconds means acked ingest stalled on a corpse), not scheduler
// noise.
const (
	e17MaxFailoverGapMs   = 5_000.0
	e17MaxForwardAckP99Us = 100_000.0
)

// metric is one comparable speedup measurement.
type metric struct {
	key     string
	speedup float64
}

// metrics extracts the speedup-carrying entries of an artifact, keyed by
// their configuration.
func metrics(a artifact) []metric {
	var out []metric
	for _, r := range a.E9 {
		if r.Speedup > 0 {
			out = append(out, metric{
				key:     fmt.Sprintf("e9[instances=%d queries=%d mode=%s]", r.Instances, r.Queries, r.Mode),
				speedup: r.Speedup,
			})
		}
	}
	for _, r := range a.E10 {
		if r.Speedup > 0 {
			out = append(out, metric{
				key:     fmt.Sprintf("e10[mode=%s roles=%d window=%d]", r.Mode, r.Roles, r.Window),
				speedup: r.Speedup,
			})
		}
	}
	for _, r := range a.E13 {
		if r.Speedup > 0 {
			out = append(out, metric{
				key:     fmt.Sprintf("e13[subs=%d mode=%s]", r.Subs, r.Mode),
				speedup: r.Speedup,
			})
		}
	}
	for _, r := range a.E14 {
		if r.Speedup > 0 {
			out = append(out, metric{
				key:     fmt.Sprintf("e14[mode=%s]", r.Mode),
				speedup: r.Speedup,
			})
		}
	}
	return out
}

// deadThroughput returns the modes of throughput-carrying rows that
// report zero (or negative) records per second — a sign the experiment
// silently measured nothing, which a pure speedup ratio can mask when
// both sides collapse together.
func deadThroughput(a artifact) []string {
	var dead []string
	for _, r := range a.E14 {
		if r.RecPerSec <= 0 {
			dead = append(dead, fmt.Sprintf("e14[mode=%s]", r.Mode))
		}
	}
	return dead
}

// e15Failures checks the current artifact's E15 section against the
// absolute contention floors. Returns human-readable failures, empty
// when the section is absent (artifacts other than BENCH_6) or passing.
func e15Failures(a artifact) []string {
	if a.E15 == nil {
		return nil
	}
	var fails []string
	s := a.E15
	if s.P99Speedup < e15MinSpeedup {
		fails = append(fails, fmt.Sprintf("e15[p99Speedup] = %.1fx, floor %.0fx", s.P99Speedup, e15MinSpeedup))
	}
	if s.IngestLoadRatio < e15MinIngestRatio {
		fails = append(fails, fmt.Sprintf("e15[ingestLoadRatio] = %.2f, floor %.2f", s.IngestLoadRatio, e15MinIngestRatio))
	}
	if s.AuditLocksPerPage != 0 {
		fails = append(fails, fmt.Sprintf("e15[auditLocksPerPage] = %.2f, want 0", s.AuditLocksPerPage))
	}
	if s.AuditPages == 0 {
		fails = append(fails, "e15[auditPages] = 0 (replay sweep measured nothing)")
	}
	for _, r := range s.Contend {
		if r.IngestPerSec <= 0 {
			fails = append(fails, fmt.Sprintf("e15[mode=%s] ingest dead (0 inst/s)", r.Mode))
		}
	}
	return fails
}

// e16Failures checks the current artifact's E16 section against the
// absolute tiered-storage floors. Returns human-readable failures,
// empty when the section is absent or passing.
func e16Failures(a artifact) []string {
	if a.E16 == nil {
		return nil
	}
	var fails []string
	s := a.E16
	if s.Segments < 1 {
		fails = append(fails, "e16[segments] = 0 (spill produced no cold segments)")
	}
	if s.SpilledPerSec <= 0 {
		fails = append(fails, "e16[spilledPerSec] = 0 (spill path dead)")
	}
	if s.WalkPages == 0 {
		fails = append(fails, "e16[walkPages] = 0 (merged walk measured nothing)")
	}
	if s.WalkMismatches != 0 {
		fails = append(fails, fmt.Sprintf("e16[walkMismatches] = %d, want 0 (merged pages diverge from oracle)", s.WalkMismatches))
	}
	if s.ColdP99Us > e16MaxColdP99Us {
		fails = append(fails, fmt.Sprintf("e16[coldP99Us] = %.0f, ceiling %.0f", s.ColdP99Us, e16MaxColdP99Us))
	}
	return fails
}

// e17Failures checks the current artifact's E17 section against the
// absolute cluster floors. Returns human-readable failures, empty when
// the section is absent or passing.
func e17Failures(a artifact) []string {
	if a.E17 == nil {
		return nil
	}
	var fails []string
	s := a.E17
	if s.ForwardAcks == 0 {
		fails = append(fails, "e17[forwardAcks] = 0 (no records crossed a node boundary)")
	}
	if s.ReplSamples == 0 {
		fails = append(fails, "e17[replSamples] = 0 (replication path dead)")
	}
	if s.Reroutes == 0 {
		fails = append(fails, "e17[reroutes] = 0 (failover never exercised)")
	}
	if s.GatherInstances == 0 {
		fails = append(fails, "e17[gatherInstances] = 0 (differential proved nothing)")
	}
	if s.Mismatches != 0 {
		fails = append(fails, fmt.Sprintf("e17[mismatches] = %d, want 0 (cluster diverges from oracle)", s.Mismatches))
	}
	if s.FailoverGapMs > e17MaxFailoverGapMs {
		fails = append(fails, fmt.Sprintf("e17[failoverGapMs] = %.0f, ceiling %.0f", s.FailoverGapMs, e17MaxFailoverGapMs))
	}
	if s.ForwardAckP99Us > e17MaxForwardAckP99Us {
		fails = append(fails, fmt.Sprintf("e17[forwardAckP99Us] = %.0f, ceiling %.0f", s.ForwardAckP99Us, e17MaxForwardAckP99Us))
	}
	return fails
}

func load(path string) (artifact, error) {
	var a artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema == "" {
		return a, fmt.Errorf("%s: not an edlbench artifact (no schema field)", path)
	}
	return a, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	baselinePath := fs.String("baseline", "", "committed baseline artifact (required)")
	currentPath := fs.String("current", "", "freshly generated artifact (required)")
	maxRegress := fs.Float64("max-regress", 0.30, "maximum tolerated fractional speedup regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(errw, "benchdiff: -baseline and -current are required")
		return 2
	}
	if *maxRegress < 0 || *maxRegress >= 1 {
		fmt.Fprintln(errw, "benchdiff: -max-regress must be in [0, 1)")
		return 2
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}

	if dead := deadThroughput(cur); len(dead) > 0 {
		for _, key := range dead {
			fmt.Fprintf(out, "%-48s %12s %12s %9s  DEAD (0 obs/s)\n", key, "-", "-", "-")
		}
		fmt.Fprintln(errw, "benchdiff: FAIL: current artifact reports 0 obs/s")
		return 1
	}
	if base.E15 != nil && cur.E15 == nil {
		fmt.Fprintln(errw, "benchdiff: FAIL: baseline carries an e15 section but current artifact has none")
		return 1
	}
	if fails := e15Failures(cur); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(out, "%s  FLOOR\n", f)
		}
		fmt.Fprintln(errw, "benchdiff: FAIL: e15 contention floors violated")
		return 1
	}
	if cur.E15 != nil {
		fmt.Fprintf(out, "e15: p99 speedup %.1fx (floor %.0fx), ingest ratio %.2f (floor %.2f), index-locks/page %.0f\n",
			cur.E15.P99Speedup, e15MinSpeedup, cur.E15.IngestLoadRatio, e15MinIngestRatio, cur.E15.AuditLocksPerPage)
	}
	if base.E16 != nil && cur.E16 == nil {
		fmt.Fprintln(errw, "benchdiff: FAIL: baseline carries an e16 section but current artifact has none")
		return 1
	}
	if fails := e16Failures(cur); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(out, "%s  FLOOR\n", f)
		}
		fmt.Fprintln(errw, "benchdiff: FAIL: e16 tiered-storage floors violated")
		return 1
	}
	if cur.E16 != nil {
		fmt.Fprintf(out, "e16: %d segments, %.0f spilled/s, cold p99 %.0fµs (ceiling %.0f), %d walk mismatches\n",
			cur.E16.Segments, cur.E16.SpilledPerSec, cur.E16.ColdP99Us, e16MaxColdP99Us, cur.E16.WalkMismatches)
	}
	if base.E17 != nil && cur.E17 == nil {
		fmt.Fprintln(errw, "benchdiff: FAIL: baseline carries an e17 section but current artifact has none")
		return 1
	}
	if fails := e17Failures(cur); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(out, "%s  FLOOR\n", f)
		}
		fmt.Fprintln(errw, "benchdiff: FAIL: e17 cluster floors violated")
		return 1
	}
	if cur.E17 != nil {
		fmt.Fprintf(out, "e17: %d forward acks (p99 %.0fµs, ceiling %.0f), failover gap %.0fms (ceiling %.0f), %d reroutes, %d mismatches\n",
			cur.E17.ForwardAcks, cur.E17.ForwardAckP99Us, e17MaxForwardAckP99Us,
			cur.E17.FailoverGapMs, e17MaxFailoverGapMs, cur.E17.Reroutes, cur.E17.Mismatches)
	}

	curBy := make(map[string]float64)
	for _, m := range metrics(cur) {
		curBy[m.key] = m.speedup
	}
	baseMetrics := metrics(base)
	if len(baseMetrics) == 0 {
		if base.E15 != nil || base.E16 != nil || base.E17 != nil {
			// Floor-only artifacts (BENCH_6's e15 section, BENCH_7's
			// e16 section, BENCH_8's e17 section): the absolute floors
			// above are the whole gate; there are no relative speedup
			// metrics.
			fmt.Fprintln(out, "benchdiff: ok (absolute floors)")
			return 0
		}
		fmt.Fprintln(errw, "benchdiff: baseline carries no speedup metrics")
		return 2
	}

	failed := false
	fmt.Fprintf(out, "%-48s %12s %12s %9s\n", "metric", "baseline", "current", "delta")
	for _, m := range baseMetrics {
		curVal, ok := curBy[m.key]
		if !ok {
			fmt.Fprintf(out, "%-48s %12.1fx %12s %9s  MISSING\n", m.key, m.speedup, "-", "-")
			failed = true
			continue
		}
		delta := (curVal - m.speedup) / m.speedup
		mark := ""
		if curVal < m.speedup*(1-*maxRegress) {
			mark = fmt.Sprintf("  REGRESSED (> %.0f%%)", *maxRegress*100)
			failed = true
		}
		fmt.Fprintf(out, "%-48s %12.1fx %12.1fx %8.1f%%%s\n", m.key, m.speedup, curVal, delta*100, mark)
	}
	if failed {
		fmt.Fprintf(errw, "benchdiff: FAIL: speedup regression beyond %.0f%% (or missing metric)\n", *maxRegress*100)
		return 1
	}
	fmt.Fprintf(out, "benchdiff: ok (%d metrics within %.0f%%)\n", len(baseMetrics), *maxRegress*100)
	return 0
}
