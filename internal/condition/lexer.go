package condition

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax is the sentinel wrapped by all condition-language parse
// errors.
var ErrSyntax = errors.New("condition: syntax error")

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokAt
	tokPlus
	tokMinus
	tokRelOp // > >= < <= == !=
)

// token is a lexed token with its byte position for error reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers are lower-cased so
// keywords and operators are case-insensitive.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '.':
			toks = append(toks, token{kind: tokDot, text: ".", pos: i})
			i++
		case c == '@':
			toks = append(toks, token{kind: tokAt, text: "@", pos: i})
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, text: "+", pos: i})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokMinus, text: "-", pos: i})
			i++
		case c == '>' || c == '<':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
			}
			toks = append(toks, token{kind: tokRelOp, text: op, pos: i})
			i += len(op)
		case c == '=' || c == '!':
			if i+1 >= n || input[i+1] != '=' {
				return nil, fmt.Errorf("at %d: unexpected %q: %w", i, string(c), ErrSyntax)
			}
			toks = append(toks, token{kind: tokRelOp, text: string(c) + "=", pos: i})
			i += 2
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < n {
				d := input[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				// Accept one decimal point followed by a digit; a dot not
				// followed by a digit belongs to a reference like "x.loc".
				if d == '.' && !seenDot && j+1 < n && input[j+1] >= '0' && input[j+1] <= '9' {
					seenDot = true
					j++
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(input[i:j]), pos: i})
			i = j
		default:
			return nil, fmt.Errorf("at %d: unexpected character %q: %w", i, string(c), ErrSyntax)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
