package node

import (
	"testing"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/network"
	"github.com/stcps/stcps/internal/phys"
	"github.com/stcps/stcps/internal/sim"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/internal/wsn"
)

// failureRig is a single mote chain with a step stimulus, used for
// failure-injection experiments.
type failureRig struct {
	sched *sim.Scheduler
	net   *wsn.Network
	mote  *MoteNode
	got   []event.Instance
}

func buildFailureRig(t *testing.T, seed int64) *failureRig {
	t.Helper()
	r := &failureRig{sched: sim.New(seed)}
	world, err := phys.NewWorld(r.sched, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.AddPhenomenon("step", phys.Step{
		Name: "temp", Before: 20, After: 80, At: 100,
	}); err != nil {
		t.Fatal(err)
	}
	r.net, err = wsn.New(r.sched, wsn.Radio{Range: 15, HopDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.net.AddSink("sink", spatial.Pt(0, 0), func(_ string, p any) {
		if in, ok := p.(event.Instance); ok {
			r.got = append(r.got, in)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.net.AddMote("m1", spatial.Pt(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.net.BuildRoutes(); err != nil {
		t.Fatal(err)
	}
	r.mote, err = NewMoteNode(r.sched, world, r.net, "m1", []SensorConfig{
		{ID: "SRt", Attr: "temp", Period: 10},
	}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mote.AddDetector(detect.Spec{
		EventID: "S.hot",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "SRt", Window: 1}},
		Cond:    condition.MustParse("x.temp > 50"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.mote.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLinkOutageAndRecovery injects a total link outage after the
// stimulus and verifies (a) nothing is delivered during the outage,
// (b) delivery resumes after recovery, (c) detection latency reflects
// the outage window.
func TestLinkOutageAndRecovery(t *testing.T) {
	r := buildFailureRig(t, 9)
	// Outage from t=90 (before the step at 100) until t=300.
	if err := r.sched.At(90, func() {
		if err := r.net.SetLossRate(1); err != nil {
			t.Errorf("SetLossRate: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.sched.At(300, func() {
		if err := r.net.SetLossRate(0); err != nil {
			t.Errorf("SetLossRate: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	r.sched.Run(295)
	if len(r.got) != 0 {
		t.Fatalf("instances delivered during outage: %d", len(r.got))
	}
	dropped := r.net.Stats().Dropped
	if dropped == 0 {
		t.Fatal("outage dropped nothing — stimulus never sent?")
	}

	r.sched.Run(600)
	if len(r.got) == 0 {
		t.Fatal("no delivery after recovery")
	}
	first := r.got[0]
	// The first delivered detection is generated after recovery: its
	// generation time must be at (or after) the first post-recovery
	// sample.
	if first.Gen < 300 {
		t.Fatalf("first delivered instance generated at %d, inside the outage", first.Gen)
	}
	// Its detection latency against the step at 100 reflects the outage.
	if edl := first.Gen - 100; edl < 200 {
		t.Fatalf("EDL = %d, should include the outage window", edl)
	}
}

// TestDeadRelayPartitionsNetwork removes a relay by rebuilding routes
// without it: downstream motes become unreachable and SendUp fails
// loudly rather than silently dropping.
func TestDeadRelayPartitionsNetwork(t *testing.T) {
	sched := sim.New(4)
	net, err := wsn.New(sched, wsn.Radio{Range: 12, HopDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddSink("sink", spatial.Pt(0, 0), func(string, any) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddMote("relay", spatial.Pt(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddMote("edge", spatial.Pt(20, 0)); err != nil {
		t.Fatal(err)
	}
	if err := net.BuildRoutes(); err != nil {
		t.Fatal(err)
	}
	edge, err := net.Mote("edge")
	if err != nil {
		t.Fatal(err)
	}
	if edge.Hops != 2 {
		t.Fatalf("edge hops = %d, want 2", edge.Hops)
	}

	// Simulate the relay's death: a fresh network without it.
	net2, err := wsn.New(sched, wsn.Radio{Range: 12, HopDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net2.AddSink("sink", spatial.Pt(0, 0), func(string, any) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := net2.AddMote("edge", spatial.Pt(20, 0)); err != nil {
		t.Fatal(err)
	}
	if err := net2.BuildRoutes(); err == nil {
		t.Fatal("partitioned network should report unrouted motes")
	}
	if err := net2.SendUp("edge", "x"); err == nil {
		t.Fatal("send from partitioned mote should fail")
	}
}

// TestNoisySensorStillConverges: heavy measurement noise produces false
// positives at the mote level, but a sink-level conjunction over two
// motes suppresses them — the fusion value of the observer hierarchy.
func TestNoisySensorStillConverges(t *testing.T) {
	sched := sim.New(11)
	world, _ := phys.NewWorld(sched, 5)
	_ = world.AddPhenomenon("step", phys.Step{Name: "temp", Before: 40, After: 80, At: 500})

	net, _ := wsn.New(sched, wsn.Radio{Range: 30, HopDelay: 1})
	bus, err := network.NewSimBus(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSinkNode(sched, net, bus, nil, "sink", spatial.Pt(0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.AddDetector(detect.Spec{
		EventID: "CP.hot",
		Roles: []detect.RoleSpec{
			{Name: "a", Source: "S.hot.mA", Window: 1, MaxAge: 30},
			{Name: "b", Source: "S.hot.mB", Window: 1, MaxAge: 30},
		},
		Cond: condition.MustParse("avg(a.temp, b.temp) > 55"),
	}); err != nil {
		t.Fatal(err)
	}
	var fused []event.Instance
	if err := bus.Subscribe("tap", "CP.hot", func(m network.Message) {
		if in, ok := m.Payload.(event.Instance); ok {
			fused = append(fused, in)
		}
	}); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"mA", "mB"} {
		if _, err := net.AddMote(id, spatial.Pt(10, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.BuildRoutes(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mA", "mB"} {
		m, err := NewMoteNode(sched, world, net, id, []SensorConfig{
			{ID: "SRt", Attr: "temp", Period: 10, Noise: 8},
		}, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddDetector(detect.Spec{
			EventID: "S.hot." + id,
			Roles:   []detect.RoleSpec{{Name: "x", Source: "SRt", Window: 1}},
			Cond:    condition.MustParse("x.temp > 55"),
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run(1000)

	if len(fused) == 0 {
		t.Fatal("fusion detected nothing after the step")
	}
	// No fused detection may predate the step minus noise tolerance.
	for _, in := range fused {
		if in.Occ.End() < 450 {
			t.Fatalf("fused false positive at %v (step at 500)", in.Occ)
		}
	}
}

var _ = timemodel.Tick(0)
