// Package guardedby implements the stcpsvet analyzer for the engine's
// mutex contracts. A struct field annotated
//
//	ring []Delivery //stcps:guardedby mu
//
// may only be accessed inside a function (or closure) that either
// contains a Lock/RLock call on that mutex — resolved as <base>.mu for
// an access through <base>, or a bare mu for local/package mutexes —
// or is annotated //stcps:holds mu, meaning its contract is "called
// with mu held" (or the function owns the value exclusively, as
// constructors do).
//
// The check is flow-insensitive by design: a function that locks the
// right mutex anywhere is accepted. It machine-checks which mutex a
// field belongs to and that no access path forgets the handshake
// entirely — lock ordering and early-unlock bugs remain the race
// detector's job.
package guardedby

import (
	"go/ast"
	"go/types"

	"github.com/stcps/stcps/internal/analysis"
)

// Analyzer is the guarded-field access checker.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "report accesses to //stcps:guardedby fields outside their mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guarded := analysis.GuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkScope(pass, guarded, fn.Body, scopeFacts(pass, fn.Body, analysis.FuncHolds(fn)))
		}
	}
	return nil
}

// facts is what a function scope is known to hold: mutexes named by
// //stcps:holds and lock receivers observed in the body.
type facts struct {
	holds map[string]bool // mutex name -> held by contract
	locks map[string]bool // printed receiver exprs of Lock/RLock calls
}

// scopeFacts collects the lock evidence for one function body. Nested
// closures are excluded: they execute on their own schedule, so each
// gets its own facts when visited.
func scopeFacts(pass *analysis.Pass, body *ast.BlockStmt, holds []string) facts {
	f := facts{holds: make(map[string]bool), locks: make(map[string]bool)}
	for _, mu := range holds {
		f.holds[mu] = true
	}
	inspectScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			f.locks[types.ExprString(sel.X)] = true
		}
	})
	return f
}

// inspectScope walks body, not descending into nested function
// literals.
func inspectScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// checkScope reports guarded-field accesses in one scope and recurses
// into closures with fresh facts (closures inherit the //stcps:holds
// of nothing: they must lock for themselves or the access is reported).
func checkScope(pass *analysis.Pass, guarded map[*types.Var]string, body *ast.BlockStmt, f facts) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, guarded, n.Body, scopeFacts(pass, n.Body, nil))
			return false
		case *ast.SelectorExpr:
			v, ok := pass.TypesInfo.Uses[n.Sel].(*types.Var)
			if !ok {
				return true
			}
			mu, ok := guarded[v]
			if !ok {
				return true
			}
			base := types.ExprString(n.X)
			if f.holds[mu] || f.locks[base+"."+mu] || f.locks[mu] {
				return true
			}
			pass.Reportf(n.Sel.Pos(), "%s.%s is guarded by %s, which is neither locked in this function nor declared held (//stcps:holds %s)", base, n.Sel.Name, mu, mu)
		case *ast.Ident:
			// Bare access to a guarded local/package var (rare: fields
			// are the normal case and always selector-accessed).
			v, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			mu, ok := guarded[v]
			if !ok {
				return true
			}
			if f.holds[mu] || f.locks[mu] {
				return true
			}
			pass.Reportf(n.Pos(), "%s is guarded by %s, which is neither locked in this function nor declared held (//stcps:holds %s)", n.Name, mu, mu)
		}
		return true
	})
}
