// Server-sent-events fan-out: GET /subscribe streams matching event
// instances to the client the moment they are detected, with gapless
// catch-up replay on reconnect.
//
// Wire format (text/event-stream):
//
//	id: <store cursor>
//	event: instance
//	data: {...instance JSON...}
//
//	event: gap
//	data: {"dropped":N}
//
//	event: error
//	data: {"error":"..."}
//
// Every instance event carries the store cursor as its SSE id, so a
// reconnecting client resumes with ?cursor=<last id> (or the standard
// Last-Event-ID header): the server replays the missed instances from
// the store, then splices onto the live feed with no gaps and no
// duplicates. A `gap` event reports deliveries lost to backpressure
// (the per-subscriber buffer dropped its oldest entries because the
// client read too slowly) — the client heals by reconnecting from its
// last id. An `error` event (notably a mid-replay retention eviction,
// HTTP 410 at subscribe time) means the cursor no longer resumes
// cleanly and the client must resync from scratch.
package main

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/stcps/stcps"
	"github.com/stcps/stcps/internal/db"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/sub"
)

// ssePingEvery is the keep-alive comment period; a variable so tests
// can shorten it.
var ssePingEvery = 15 * time.Second

// maxSSEBuffer caps the client-supplied buffer= override: per-connection
// server memory must not be client-controlled. Larger consumers should
// drain faster or reconnect from their cursor after a gap.
const maxSSEBuffer = 1 << 16

// subscribe answers GET /subscribe?event=&x1=&y1=&x2=&y2=&from=&to=
// &where=&cursor=&replay=&buffer= with a server-sent-event stream.
func (a *api) subscribe(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	v := r.URL.Query()
	p, err := parseSTPredicates(v)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := stcps.SubscriptionSpec{
		Event: p.event, Region: p.region,
		HasTime: p.hasTime, From: p.from, To: p.to,
		Where:  v.Get("where"),
		Cursor: v.Get("cursor"),
		Replay: v.Get("replay") == "1" || v.Get("replay") == "true",
	}
	if spec.Cursor == "" {
		spec.Cursor = r.Header.Get("Last-Event-ID")
	}
	if s := v.Get("buffer"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 || n > maxSSEBuffer {
			httpError(w, http.StatusBadRequest, "bad buffer %q (max %d)", s, maxSSEBuffer)
			return
		}
		spec.Buffer = n
	}
	s, err := a.eng.Subscribe(spec)
	switch {
	case errors.Is(err, db.ErrStaleCursor):
		// 410 Gone: the cursor precedes retained history; a clean resume
		// is impossible and the client must resync.
		httpError(w, http.StatusGone, "%v", err)
		return
	case errors.Is(err, db.ErrBadCursor), errors.Is(err, stcps.ErrNoCatchUp):
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	case err != nil: // condition compile errors
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer s.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	ping := time.NewTicker(ssePingEvery)
	defer ping.Stop()
	var lastDropped uint64
	for {
		// Drain everything buffered, then flush once.
		wrote := false
		for {
			d, ok, err := s.Poll()
			if err != nil {
				if !errors.Is(err, sub.ErrClosed) {
					fmt.Fprintf(w, "event: error\ndata: {\"error\":%q}\n\n", err.Error())
				}
				fl.Flush() // deliveries drained just before the error
				return
			}
			if !ok {
				break
			}
			if err := writeSSEInstance(w, &d); err != nil {
				return // client gone
			}
			wrote = true
		}
		if dropped := s.Stats().Dropped; dropped > lastDropped {
			fmt.Fprintf(w, "event: gap\ndata: {\"dropped\":%d}\n\n", dropped-lastDropped)
			lastDropped = dropped
			wrote = true
		}
		if wrote {
			fl.Flush()
		}
		select {
		case <-ctx.Done():
			return
		case <-s.Done():
			// Drain what landed before the close on the next loop; the
			// Poll above will then report ErrClosed and return.
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-s.Notify():
		}
	}
}

// writeSSEInstance renders one delivery as an SSE instance event.
func writeSSEInstance(w http.ResponseWriter, d *stcps.SubDelivery) error {
	data, err := event.EncodeInstance(d.Inst)
	if err != nil {
		return err
	}
	if d.HasCursor {
		if _, err := fmt.Fprintf(w, "id: %d\n", d.Cursor); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: instance\ndata: %s\n\n", data)
	return err
}

// subscriptionsResponse is the GET /subscriptions document.
type subscriptionsResponse struct {
	Stats       stcps.SubscriptionStats `json:"stats"`
	Subscribers []stcps.SubscriberStats `json:"subscribers"`
}

// subscriptions answers GET /subscriptions with the subsystem's
// aggregate counters and each live subscription's state.
func (a *api) subscriptions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, subscriptionsResponse{
		Stats:       a.eng.SubscriptionStats(),
		Subscribers: a.eng.SubscriberStats(),
	})
}
