//go:build ignore

// clusterdiff fetches two stcpsd query endpoints and fails unless
// their instance streams are identical, element for element — the
// cluster smoke test's differential oracle (a clustered gateway's
// scatter-gather page against a single-node reference daemon).
// Usage: go run scripts/clusterdiff.go URL_A URL_B.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
)

type page struct {
	Count     int               `json:"count"`
	Instances []json.RawMessage `json:"instances"`
}

func fetch(u string) (page, error) {
	var p page
	resp, err := http.Get(u)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return p, err
	}
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("%s: %s: %s", u, resp.Status, body)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		return p, fmt.Errorf("%s: %w", u, err)
	}
	return p, nil
}

// canon re-marshals a raw JSON value so formatting differences cannot
// mask (or fake) a mismatch; Go object keys re-marshal in map order,
// so both sides pass through the same canonicalization.
func canon(raw json.RawMessage) (string, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", err
	}
	out, err := json.Marshal(v)
	return string(out), err
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: clusterdiff URL_A URL_B")
		os.Exit(2)
	}
	a, err := fetch(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterdiff:", err)
		os.Exit(1)
	}
	b, err := fetch(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterdiff:", err)
		os.Exit(1)
	}
	if len(a.Instances) == 0 {
		fmt.Fprintln(os.Stderr, "clusterdiff: no instances on either side — the diff proves nothing")
		os.Exit(1)
	}
	if len(a.Instances) != len(b.Instances) {
		fmt.Fprintf(os.Stderr, "clusterdiff: %d vs %d instances\n", len(a.Instances), len(b.Instances))
		os.Exit(1)
	}
	for i := range a.Instances {
		ca, err := canon(a.Instances[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterdiff:", err)
			os.Exit(1)
		}
		cb, err := canon(b.Instances[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterdiff:", err)
			os.Exit(1)
		}
		if ca != cb {
			fmt.Fprintf(os.Stderr, "clusterdiff: instance %d diverges:\n  a: %s\n  b: %s\n", i, ca, cb)
			os.Exit(1)
		}
	}
	fmt.Printf("clusterdiff: ok (%d instances identical)\n", len(a.Instances))
}
