package latency

import (
	"fmt"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/metrics"
	"github.com/stcps/stcps/internal/network"
	"github.com/stcps/stcps/internal/node"
	"github.com/stcps/stcps/internal/phys"
	"github.com/stcps/stcps/internal/sim"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/internal/wsn"
)

// ChainConfig parameterizes one EDL chain experiment: a sink at the
// origin, Depth relay motes in a line, the farthest mote sensing a step
// stimulus, one CCU behind the bus.
type ChainConfig struct {
	// Depth is the hop count from the sensing mote to the sink (>= 1).
	Depth int
	// SamplingPeriod is the sensing mote's sampling period.
	SamplingPeriod timemodel.Tick
	// HopDelay is the WSN per-hop delay.
	HopDelay timemodel.Tick
	// BusDelay is the CPS network delay (sink → CCU).
	BusDelay timemodel.Tick
	// LossRate is the WSN per-hop loss probability.
	LossRate float64
	// StepAt is the ground-truth occurrence tick of the stimulus.
	StepAt timemodel.Tick
	// Runs is the number of independent runs (different seeds / phases).
	Runs int
	// Deadline bounds each run; detections after it count as missed.
	Deadline timemodel.Tick
}

func (c *ChainConfig) normalize() error {
	if c.Depth < 1 {
		return fmt.Errorf("latency: depth %d must be >= 1", c.Depth)
	}
	if c.SamplingPeriod <= 0 {
		return fmt.Errorf("latency: sampling period %d must be positive", c.SamplingPeriod)
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.StepAt <= 0 {
		c.StepAt = 100
	}
	if c.Deadline <= c.StepAt {
		c.Deadline = c.StepAt + 50*c.SamplingPeriod + timemodel.Tick(c.Depth)*c.HopDelay*20 + c.BusDelay*10 + 1000
	}
	return nil
}

// ChainResult aggregates the experiment outcome.
type ChainResult struct {
	// Analytic is the model prediction for detection at the CCU.
	Analytic Model
	// SinkEDL holds measured sink-level (cyber-physical) latencies of
	// the first detection per run.
	SinkEDL *metrics.Histogram
	// CCUEDL holds measured CCU-level (cyber event) latencies.
	CCUEDL *metrics.Histogram
	// Detected counts runs with a CCU detection before the deadline.
	Detected int
	// Runs is the number of runs executed.
	Runs int
}

// Recall returns the fraction of runs whose stimulus was detected at the
// CCU before the deadline.
func (r ChainResult) Recall() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Runs)
}

// RunChain executes the chain experiment and returns measured and
// analytic EDL.
func RunChain(cfg ChainConfig) (ChainResult, error) {
	if err := cfg.normalize(); err != nil {
		return ChainResult{}, err
	}
	res := ChainResult{
		Analytic: Model{
			SamplingPeriod: cfg.SamplingPeriod,
			HopDelay:       cfg.HopDelay,
			Hops:           cfg.Depth,
			BusDelay:       cfg.BusDelay,
			BusStages:      1,
			ProcDelay:      0,
			Observers:      3,
		},
		SinkEDL: &metrics.Histogram{},
		CCUEDL:  &metrics.Histogram{},
		Runs:    cfg.Runs,
	}
	for run := 0; run < cfg.Runs; run++ {
		sinkGen, ccuGen, err := runChainOnce(cfg, int64(run+1))
		if err != nil {
			return ChainResult{}, err
		}
		if sinkGen >= 0 {
			res.SinkEDL.AddTick(sinkGen - cfg.StepAt)
		}
		if ccuGen >= 0 {
			res.CCUEDL.AddTick(ccuGen - cfg.StepAt)
			res.Detected++
		}
	}
	return res, nil
}

// runChainOnce builds and runs one chain; it returns the generation ticks
// of the first sink-level and CCU-level detections (-1 when missed).
func runChainOnce(cfg ChainConfig, seed int64) (sinkGen, ccuGen timemodel.Tick, err error) {
	sched := sim.New(seed)
	world, err := phys.NewWorld(sched, cfg.SamplingPeriod)
	if err != nil {
		return -1, -1, err
	}
	if err := world.AddPhenomenon("step", phys.Step{
		Name: "temp", Before: 20, After: 80, At: cfg.StepAt,
	}); err != nil {
		return -1, -1, err
	}

	const spacing = 10.0
	radio := wsn.Radio{Range: spacing + 1, HopDelay: cfg.HopDelay, LossRate: cfg.LossRate}
	net, err := wsn.New(sched, radio)
	if err != nil {
		return -1, -1, err
	}
	bus, err := network.NewSimBus(sched, cfg.BusDelay)
	if err != nil {
		return -1, -1, err
	}

	sinkGen, ccuGen = -1, -1
	sink, err := node.NewSinkNode(sched, net, bus, nil, "sink", spatial.Pt(0, 0), 0)
	if err != nil {
		return -1, -1, err
	}
	// Chain of relays; the farthest mote senses.
	for i := 1; i <= cfg.Depth; i++ {
		if _, err := net.AddMote(fmt.Sprintf("m%02d", i), spatial.Pt(float64(i)*spacing, 0)); err != nil {
			return -1, -1, err
		}
	}
	if err := net.BuildRoutes(); err != nil {
		return -1, -1, err
	}
	sensingID := fmt.Sprintf("m%02d", cfg.Depth)
	// Phase-shift sampling pseudo-randomly per run so the discovery delay
	// is sampled uniformly.
	offset := timemodel.Tick(sched.RNG().Int63n(int64(cfg.SamplingPeriod)))
	mote, err := node.NewMoteNode(sched, world, net, sensingID, []node.SensorConfig{
		{ID: "SRt", Attr: "temp", Period: cfg.SamplingPeriod, Offset: offset},
	}, nil, 0)
	if err != nil {
		return -1, -1, err
	}
	if err := mote.AddDetector(detect.Spec{
		EventID: "S.hot",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "SRt", Window: 1}},
		Cond:    condition.MustParse("x.temp > 50"),
	}); err != nil {
		return -1, -1, err
	}
	if err := sink.AddDetector(detect.Spec{
		EventID: "CP.hot",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "S.hot", Window: 1}},
		Cond:    condition.MustParse("x.temp > 50"),
	}); err != nil {
		return -1, -1, err
	}
	ccu, err := node.NewCCU(sched, bus, nil, "ccu", spatial.Pt(0, 10), 0)
	if err != nil {
		return -1, -1, err
	}
	if err := ccu.AddDetector(detect.Spec{
		EventID: "E.hot",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "CP.hot", Window: 1}},
		Cond:    condition.MustParse("true"),
	}); err != nil {
		return -1, -1, err
	}

	// Observe first detections via a bus tap.
	if err := bus.Subscribe("tap", "CP.hot", func(m network.Message) {
		if sinkGen < 0 {
			if in, ok := m.Payload.(event.Instance); ok {
				sinkGen = in.Gen
			}
		}
	}); err != nil {
		return -1, -1, err
	}
	if err := bus.Subscribe("tap", "E.hot", func(m network.Message) {
		if ccuGen < 0 {
			if in, ok := m.Payload.(event.Instance); ok {
				ccuGen = in.Gen
			}
		}
	}); err != nil {
		return -1, -1, err
	}

	if err := mote.Start(); err != nil {
		return -1, -1, err
	}
	sched.Run(cfg.Deadline)
	return sinkGen, ccuGen, nil
}
