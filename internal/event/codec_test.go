package event

import (
	"bytes"
	"errors"
	"testing"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func wireObs(i int) Observation {
	return Observation{
		Mote: "MT1", Sensor: "SRimu", Seq: uint64(i + 1),
		Time: timemodel.At(timemodel.Tick(i * 10)),
		Loc:  spatial.AtPoint(float64(i%7), float64(i%5)),
		Attrs: Attrs{
			"ax": 0.1 * float64(i), "ay": -0.2, "az": 9.8,
			"gx": 0.01, "gy": 0.02, "gz": 0.03,
			"mx": 41, "my": -12, "mz": 7, "temp": 21.5,
		},
	}
}

func wireInst(i int) Instance {
	return Instance{
		Layer: LayerSensor, Observer: "MT1", Event: "S.temp",
		Seq: uint64(i + 1), Gen: timemodel.Tick(i * 10),
		GenLoc:     spatial.AtPoint(0, 0),
		Occ:        timemodel.MustBetween(timemodel.Tick(i*10), timemodel.Tick(i*10+5)),
		Loc:        spatial.AtPoint(float64(i), 1),
		Attrs:      Attrs{"temp": 20 + float64(i)},
		Confidence: 0.9,
		Inputs:     []string{"O(MT1,SRimu,1)", "O(MT1,SRimu,2)"},
	}
}

func TestObservationWireRoundTrip(t *testing.T) {
	it := NewInterner()
	for i := 0; i < 5; i++ {
		o := wireObs(i)
		enc := AppendObservationWire(nil, &o)
		var got Observation
		if err := DecodeObservationWire(enc, &got, it); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Mote != o.Mote || got.Sensor != o.Sensor || got.Seq != o.Seq ||
			!got.Time.Equal(o.Time) || got.Loc.String() != o.Loc.String() ||
			len(got.Attrs) != len(o.Attrs) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, o)
		}
		for k, v := range o.Attrs {
			if got.Attrs[k] != v {
				t.Fatalf("attr %q = %g, want %g", k, got.Attrs[k], v)
			}
		}
		// Canonical encoding: re-encoding the decoded value reproduces
		// the bytes (attr names are sorted on encode).
		re := AppendObservationWire(nil, &got)
		if !bytes.Equal(re, enc) {
			t.Fatalf("re-encode not byte-identical:\n got %x\nwant %x", re, enc)
		}
	}
}

// TestWireEncoderSchemaCache drives one encoder across schema changes:
// every output must be byte-identical to the stateless encoder's, no
// matter how the cached schema relates to the record's.
func TestWireEncoderSchemaCache(t *testing.T) {
	base := func() Observation {
		o := wireObs(0)
		return o
	}
	steps := []struct {
		name  string
		attrs Attrs
	}{
		{"initial", Attrs{"ax": 1, "ay": 2, "az": 3}},
		{"repeat", Attrs{"ax": 4, "ay": 5, "az": 6}},
		{"renamed key, same count", Attrs{"ax": 1, "ay": 2, "zz": 3}},
		{"repeat renamed", Attrs{"ax": 7, "ay": 8, "zz": 9}},
		{"fewer keys", Attrs{"ax": 1}},
		{"more keys", Attrs{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}},
		{"empty", Attrs{}},
		{"nil", nil},
		{"back to initial", Attrs{"ax": 1, "ay": 2, "az": 3}},
	}
	var enc WireEncoder
	for _, step := range steps {
		o := base()
		o.Attrs = step.attrs
		got := enc.AppendObservation(nil, &o)
		want := AppendObservationWire(nil, &o)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: cached encoder diverged:\n got %x\nwant %x", step.name, got, want)
		}
	}
}

func TestObservationWireFieldLocation(t *testing.T) {
	f, err := spatial.Rect(0, 0, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := Observation{
		Mote: "MT2", Sensor: "SRcam", Seq: 9,
		Time: timemodel.MustBetween(5, 9),
		Loc:  spatial.InField(f),
	}
	enc := AppendObservationWire(nil, &o)
	var got Observation
	if err := DecodeObservationWire(enc, &got, nil); err != nil {
		t.Fatalf("decode: %v", err)
	}
	gf, ok := got.Loc.Field()
	if !ok || !gf.Equal(f) {
		t.Fatalf("field round trip mismatch: %v", got.Loc)
	}
}

func TestInstanceWireRoundTrip(t *testing.T) {
	it := NewInterner()
	for i := 0; i < 5; i++ {
		in := wireInst(i)
		enc, err := AppendInstanceWire(nil, &in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got Instance
		if err := DecodeInstanceWire(enc, &got, it); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.EntityID() != in.EntityID() || got.Gen != in.Gen ||
			!got.Occ.Equal(in.Occ) || got.Confidence != in.Confidence ||
			len(got.Inputs) != len(in.Inputs) || got.Layer != in.Layer {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, in)
		}
		for j := range in.Inputs {
			if got.Inputs[j] != in.Inputs[j] {
				t.Fatalf("input %d = %q, want %q", j, got.Inputs[j], in.Inputs[j])
			}
		}
		re, err := AppendInstanceWire(nil, &got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("re-encode not byte-identical")
		}
	}
}

func TestInstanceWireRejectsInvalid(t *testing.T) {
	in := wireInst(0)
	in.Confidence = 1.5
	if _, err := AppendInstanceWire(nil, &in); !errors.Is(err, ErrConfidenceRange) {
		t.Fatalf("encode of invalid instance: err=%v, want ErrConfidenceRange", err)
	}
	// A decoded instance is validated too: corrupt a valid encoding's
	// confidence field by re-encoding an invalid one through the raw
	// appenders (bypass Validate by patching bytes instead).
	ok := wireInst(0)
	enc, err := AppendInstanceWire(nil, &ok)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, never panic.
	var got Instance
	for n := 0; n < len(enc); n++ {
		if err := DecodeInstanceWire(enc[:n], &got, nil); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
	// Trailing garbage is rejected.
	if err := DecodeInstanceWire(append(enc, 0), &got, nil); !errors.Is(err, ErrWireTrailing) {
		t.Fatalf("trailing byte: err=%v, want ErrWireTrailing", err)
	}
}

func TestObservationWireTruncationsRejected(t *testing.T) {
	o := wireObs(3)
	enc := AppendObservationWire(nil, &o)
	var got Observation
	for n := 0; n < len(enc); n++ {
		if err := DecodeObservationWire(enc[:n], &got, nil); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
	if err := DecodeObservationWire(append(enc, 0), &got, nil); !errors.Is(err, ErrWireTrailing) {
		t.Fatalf("trailing byte: err=%v, want ErrWireTrailing", err)
	}
}

func TestInternerDedupes(t *testing.T) {
	it := NewInterner()
	a := it.Intern([]byte("SRimu"))
	b := it.Intern([]byte("SRimu"))
	// Same backing string object: comparing data pointers via string
	// headers is not directly possible, but equal content plus the map
	// hit path is observable through the allocation gate below; here we
	// settle for semantic equality and nil-receiver safety.
	if a != b {
		t.Fatalf("interner returned different strings")
	}
	var nilIt *Interner
	if got := nilIt.Intern([]byte("x")); got != "x" {
		t.Fatalf("nil interner: %q", got)
	}
}

// TestInternerBounds: a hostile stream of unique or oversized names
// must not pin unbounded memory. Oversized strings are never stored,
// and total pinned bytes stop at maxInternedBytes — not at the far
// larger entry-count × max-string-length product.
func TestInternerBounds(t *testing.T) {
	it := NewInterner()

	big := bytes.Repeat([]byte{'A'}, maxInternedStrLen+1)
	if got := it.Intern(big); got != string(big) {
		t.Fatal("oversized string mangled")
	}
	if len(it.m) != 0 || it.bytes != 0 {
		t.Fatalf("oversized string stored: %d entries, %d bytes", len(it.m), it.bytes)
	}

	// Unique max-length names until well past the byte bound.
	name := make([]byte, maxInternedStrLen)
	rounds := maxInternedBytes/maxInternedStrLen + 100
	for i := 0; i < rounds; i++ {
		for j, d := 0, i; j < 8; j, d = j+1, d/10 {
			name[j] = byte('0' + d%10)
		}
		it.Intern(name)
	}
	if it.bytes > maxInternedBytes {
		t.Fatalf("interner pinned %d bytes, bound is %d", it.bytes, maxInternedBytes)
	}
	if len(it.m) != maxInternedBytes/maxInternedStrLen {
		t.Fatalf("interner holds %d entries, want byte bound to stop it at %d",
			len(it.m), maxInternedBytes/maxInternedStrLen)
	}
	// Full table: new names pass through un-interned but intact.
	if got := it.Intern([]byte("fresh")); got != "fresh" {
		t.Fatalf("post-bound intern: %q", got)
	}
	if _, ok := it.m["fresh"]; ok {
		t.Fatal("post-bound intern stored a new entry")
	}
}

// TestDecodeObservationWireAllocs is the acceptance gate for the eager
// binary decode hot path: at most 2 allocations per record, both from
// the user-visible Attrs map (its header and one bucket group — a map
// of up to 8 attributes fits one group; everything else is interned or
// inline). The zero-copy view path below is gated separately at 0.
func TestDecodeObservationWireAllocs(t *testing.T) {
	o := wireObs(1)
	o.Attrs = Attrs{"ax": 0.1, "ay": -0.2, "az": 9.8, "gx": 0.01, "gy": 0.02, "gz": 0.03}
	enc := AppendObservationWire(nil, &o)
	it := NewInterner()
	var got Observation
	// Warm the interner so steady-state behavior is measured.
	if err := DecodeObservationWire(enc, &got, it); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeObservationWire(enc, &got, it); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("DecodeObservationWire allocates %.1f/op, budget is 2", allocs)
	}
}

// TestDecodeObservationViewAllocs gates the zero-copy path: decoding a
// view must not allocate at all in steady state, and its lazy Attr
// lookups must stay allocation-free too.
func TestDecodeObservationViewAllocs(t *testing.T) {
	o := wireObs(1)
	enc := AppendObservationWire(nil, &o)
	it := NewInterner()
	var v ObservationView
	if err := DecodeObservationView(enc, &v, it); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeObservationView(enc, &v, it); err != nil {
			t.Fatal(err)
		}
		if _, ok := v.Attr("gz"); !ok {
			t.Fatal("gz missing")
		}
	})
	if allocs > 0 {
		t.Fatalf("DecodeObservationView allocates %.2f/op, budget is 0", allocs)
	}
}

func TestObservationViewEntity(t *testing.T) {
	o := wireObs(2)
	enc := AppendObservationWire(nil, &o)
	var v ObservationView
	if err := DecodeObservationView(enc, &v, nil); err != nil {
		t.Fatal(err)
	}
	if v.EntityID() != o.EntityID() {
		t.Fatalf("EntityID = %q, want %q", v.EntityID(), o.EntityID())
	}
	if !v.OccTime().Equal(o.Time) || v.OccLoc().String() != o.Loc.String() {
		t.Fatalf("time/loc mismatch")
	}
	if got, ok := v.Attr("az"); !ok || got != 9.8 {
		t.Fatalf("Attr(az) = %g,%v", got, ok)
	}
	if _, ok := v.Attr("missing"); ok {
		t.Fatalf("Attr(missing) found")
	}
	mat := v.Materialize()
	if mat.EntityID() != o.EntityID() || len(mat.Attrs) != len(o.Attrs) {
		t.Fatalf("Materialize mismatch: %+v", mat)
	}
	for k, want := range o.Attrs {
		if mat.Attrs[k] != want {
			t.Fatalf("materialized attr %q = %g, want %g", k, mat.Attrs[k], want)
		}
	}
}

func TestDecodeEntityJSON(t *testing.T) {
	in := wireInst(1)
	instLine, err := EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	gotIn, _, kind, err := DecodeEntityJSON(instLine)
	if err != nil || kind != KindInstance {
		t.Fatalf("instance line: kind=%v err=%v", kind, err)
	}
	if gotIn.EntityID() != in.EntityID() || gotIn.Confidence != in.Confidence ||
		!gotIn.Occ.Equal(in.Occ) || gotIn.Inputs[0] != in.Inputs[0] {
		t.Fatalf("instance mismatch: %+v", gotIn)
	}

	o := wireObs(1)
	obsLine, err := EncodeObservation(o)
	if err != nil {
		t.Fatal(err)
	}
	_, gotObs, kind, err := DecodeEntityJSON(obsLine)
	if err != nil || kind != KindObservation {
		t.Fatalf("observation line: kind=%v err=%v", kind, err)
	}
	if gotObs.EntityID() != o.EntityID() || gotObs.Attrs["temp"] != o.Attrs["temp"] {
		t.Fatalf("observation mismatch: %+v", gotObs)
	}

	if _, _, kind, err := DecodeEntityJSON([]byte(`{"x":1}`)); err != nil || kind != KindNeither {
		t.Fatalf("neither line: kind=%v err=%v", kind, err)
	}
	if _, _, _, err := DecodeEntityJSON([]byte(`not json`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// An instance line failing validation errors with its kind.
	if _, _, kind, err := DecodeEntityJSON([]byte(`{"event":"S.x","confidence":2}`)); err == nil || kind != KindInstance {
		t.Fatalf("invalid instance: kind=%v err=%v", kind, err)
	}
}

func FuzzObservationWireRoundTrip(f *testing.F) {
	o := wireObs(0)
	f.Add(AppendObservationWire(nil, &o))
	f.Add([]byte{})
	f.Add([]byte{1, 'a', 1, 'b', 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got Observation
		if err := DecodeObservationWire(data, &got, nil); err != nil {
			return
		}
		// Anything that decodes must re-encode byte-identically
		// (canonical form) and decode again to the same value.
		re := AppendObservationWire(nil, &got)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded observation not canonical:\n in %x\nout %x", data, re)
		}
	})
}

func FuzzInstanceWireRoundTrip(f *testing.F) {
	in := wireInst(0)
	enc, _ := AppendInstanceWire(nil, &in)
	f.Add(enc)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got Instance
		if err := DecodeInstanceWire(data, &got, nil); err != nil {
			return
		}
		re, err := AppendInstanceWire(nil, &got)
		if err != nil {
			t.Fatalf("re-encode of decoded instance failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded instance not canonical:\n in %x\nout %x", data, re)
		}
	})
}
