package spatial

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0); err == nil {
		t.Error("zero cell size should error")
	}
	if _, err := NewGrid(-3); err == nil {
		t.Error("negative cell size should error")
	}
}

func TestGridInsertQueryRemove(t *testing.T) {
	g, err := NewGrid(10)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert("a", AtPoint(5, 5))
	g.Insert("b", AtPoint(25, 25))
	g.Insert("c", InField(MustField(Pt(0, 0), Pt(12, 0), Pt(12, 12), Pt(0, 12))))
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}

	region, _ := Rect(0, 0, 10, 10)
	got := g.QueryRegion(InField(region))
	sort.Strings(got)
	if fmt.Sprint(got) != "[a c]" {
		t.Fatalf("QueryRegion = %v, want [a c]", got)
	}

	g.Remove("a")
	got = g.QueryRegion(InField(region))
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("after Remove, QueryRegion = %v, want [c]", got)
	}
	g.Remove("nonexistent") // must not panic
	if g.Len() != 2 {
		t.Fatalf("Len after removes = %d, want 2", g.Len())
	}
}

func TestGridReplaceSameID(t *testing.T) {
	g, _ := NewGrid(10)
	g.Insert("x", AtPoint(5, 5))
	g.Insert("x", AtPoint(95, 95))
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", g.Len())
	}
	region, _ := Rect(0, 0, 10, 10)
	if got := g.QueryRegion(InField(region)); len(got) != 0 {
		t.Fatalf("old location still indexed: %v", got)
	}
	region2, _ := Rect(90, 90, 100, 100)
	if got := g.QueryRegion(InField(region2)); len(got) != 1 {
		t.Fatalf("new location not found: %v", got)
	}
}

func TestGridQueryRadius(t *testing.T) {
	g, _ := NewGrid(5)
	g.Insert("near", AtPoint(1, 0))
	g.Insert("far", AtPoint(40, 0))
	g.Insert("edge", AtPoint(3, 4)) // distance exactly 5 from origin
	got := g.QueryRadius(Pt(0, 0), 5)
	sort.Strings(got)
	if fmt.Sprint(got) != "[edge near]" {
		t.Fatalf("QueryRadius = %v, want [edge near]", got)
	}
	if got := g.QueryRadius(Pt(0, 0), -1); got != nil {
		t.Fatalf("negative radius should return nil, got %v", got)
	}
}

// TestGridHugeQueryRect guards against enumerating every cell of an
// arbitrarily large query rect: a QueryRadius at dist=1e9 (≈1.5e16
// cells at cell size 5) must clamp to the populated extent and return
// promptly instead of allocating O(area/cell²) keys.
func TestGridHugeQueryRect(t *testing.T) {
	g, _ := NewGrid(5)
	g.Insert("a", AtPoint(1, 0))
	g.Insert("b", AtPoint(-300, 42))
	g.Insert("c", AtPoint(7500, -9000))
	got := g.QueryRadius(Pt(0, 0), 1e9)
	sort.Strings(got)
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("QueryRadius(1e9) = %v, want [a b c]", got)
	}
	// A huge region query takes the same clamped path.
	region, err := Rect(-1e9, -1e9, 1e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	got = g.QueryRegion(InField(region))
	sort.Strings(got)
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("huge QueryRegion = %v, want [a b c]", got)
	}
	// Empty grid: nothing to clamp to, nothing returned.
	empty, _ := NewGrid(5)
	if got := empty.QueryRadius(Pt(0, 0), 1e9); got != nil {
		t.Fatalf("empty grid QueryRadius = %v", got)
	}
	// A rect far outside the populated extent yields nothing.
	far, _ := Rect(1e6, 1e6, 2e6, 2e6)
	if got := g.QueryRegion(InField(far)); len(got) != 0 {
		t.Fatalf("far QueryRegion = %v", got)
	}
	// Coordinates beyond int64 range: int(f) would wrap to MinInt64 and
	// panic in makeslice; the float-space rejection must catch it.
	if got := g.QueryRegion(AtPoint(1e30, 1)); len(got) != 0 {
		t.Fatalf("1e30 point query = %v", got)
	}
	if got := g.QueryRegion(AtPoint(-1e30, -1e30)); len(got) != 0 {
		t.Fatalf("-1e30 point query = %v", got)
	}
	huge, err := Rect(1e300, 1e300, 2e300, 2e300)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.QueryRegion(InField(huge)); len(got) != 0 {
		t.Fatalf("1e300 rect query = %v", got)
	}
	if got := g.QueryRadius(Pt(1e30, 0), 5); len(got) != 0 {
		t.Fatalf("far-center QueryRadius = %v", got)
	}
}

func TestGridEstimateRegion(t *testing.T) {
	g, _ := NewGrid(10)
	g.Insert("a", AtPoint(5, 5))
	g.Insert("b", AtPoint(6, 6))
	g.Insert("c", AtPoint(95, 95))
	near, _ := Rect(0, 0, 9, 9)
	if n := g.EstimateRegion(InField(near)); n != 2 {
		t.Errorf("EstimateRegion(near) = %d, want 2", n)
	}
	all, _ := Rect(-1e9, -1e9, 1e9, 1e9)
	if n := g.EstimateRegion(InField(all)); n != 3 {
		t.Errorf("EstimateRegion(all) = %d, want 3", n)
	}
	nowhere, _ := Rect(400, 400, 500, 500)
	if n := g.EstimateRegion(InField(nowhere)); n != 0 {
		t.Errorf("EstimateRegion(nowhere) = %d, want 0", n)
	}
}

// TestGridMatchesLinearScan cross-checks the grid against a brute-force
// scan over random points and regions — the index must be exact.
func TestGridMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _ := NewGrid(8)
	type entry struct {
		id  string
		loc Location
	}
	var entries []entry
	for i := 0; i < 200; i++ {
		loc := AtPoint(rng.Float64()*100, rng.Float64()*100)
		id := fmt.Sprintf("p%03d", i)
		g.Insert(id, loc)
		entries = append(entries, entry{id: id, loc: loc})
	}
	for trial := 0; trial < 25; trial++ {
		x := rng.Float64() * 90
		y := rng.Float64() * 90
		w := rng.Float64()*20 + 1
		region, err := Rect(x, y, x+w, y+w)
		if err != nil {
			t.Fatal(err)
		}
		rloc := InField(region)

		var want []string
		for _, e := range entries {
			if OpJoint.Apply(e.loc, rloc) {
				want = append(want, e.id)
			}
		}
		got := g.QueryRegion(rloc)
		sort.Strings(got)
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: grid %v != scan %v", trial, got, want)
		}
	}
}
