// Package db implements the Database Server of the CPS architecture
// (Tan, Vuran, Goddard, ICDCSW 2009, Section 3): "a distributed data
// logging service for the event instances. The event instances that
// circulate inside the CPS network are automatically transferred to the
// database server after a certain time for later retrieval."
//
// The store indexes instances three ways: an append log, a per-event
// time-ordered index (binary searched for range queries), and a uniform
// spatial grid over the estimated occurrence locations (for region
// queries). Instances are addressed by a monotonic global sequence
// number, so a retention policy (Retention) can evict from the front of
// the log while every index stays consistent. QueryST serves combined
// region×time retrieval, choosing the cheaper index from cardinality
// estimates. A linear-scan query path is kept alongside the indexes for
// the E9 experiment and as a cross-check oracle in tests.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// ErrNotFound is returned when an entity id cannot be resolved.
var ErrNotFound = errors.New("db: not found")

// Retention bounds the store's memory. The zero value retains
// everything.
type Retention struct {
	// MaxInstances caps the number of live instances; the oldest
	// arrivals are evicted first (0 = unlimited).
	MaxInstances int
	// MaxAge evicts instances whose generation time has fallen more
	// than MaxAge ticks behind the newest logged generation time
	// (0 = unlimited).
	MaxAge timemodel.Tick
}

// Stats summarizes the store's contents for monitoring endpoints.
type Stats struct {
	// Instances is the live instance count.
	Instances int `json:"instances"`
	// Observations is the logged raw-observation count.
	Observations int `json:"observations"`
	// Events is the number of distinct event ids with live instances.
	Events int `json:"events"`
	// Evicted counts instances dropped by the retention policy.
	Evicted uint64 `json:"evicted"`
	// MaxGen is the newest generation time logged (the retention clock).
	MaxGen timemodel.Tick `json:"maxGen"`
}

// Store is the event-instance database. It is safe for concurrent use.
//
// Live instances occupy s.log and are addressed by a global sequence
// number: instance seq lives at s.log[seq-s.base]. Eviction advances
// base, so sequence numbers (and query cursors built from them) stay
// valid across evictions — an evicted instance simply stops resolving.
type Store struct {
	mu       sync.RWMutex
	base     uint64                       //stcps:guardedby mu -- global sequence number of log[0]
	log      []event.Instance             //stcps:guardedby mu -- live instances in arrival order
	byEvent  map[string][]uint64          //stcps:guardedby mu -- event id -> seqs, Occ.Start-ordered
	byEntity map[string]uint64            //stcps:guardedby mu -- entity id -> seq
	grid     *spatial.Grid                //stcps:guardedby mu
	obs      map[string]event.Observation //stcps:guardedby mu -- logged observations by id
	ret      Retention
	evicted  uint64         //stcps:guardedby mu
	maxGen   timemodel.Tick //stcps:guardedby mu
	// maxDur is the longest occurrence duration ever logged per event —
	// the window lower bound for the time index: every instance
	// intersecting [from, to] has Occ.Start >= from-maxDur. Grow-only
	// (eviction leaves it as a safe over-approximation).
	maxDur map[string]timemodel.Tick //stcps:guardedby mu
}

// DefaultGridCell is the spatial index cell size.
const DefaultGridCell = 16.0

// New creates an empty store. cellSize <= 0 selects DefaultGridCell.
func New(cellSize float64) (*Store, error) {
	if cellSize <= 0 {
		cellSize = DefaultGridCell
	}
	g, err := spatial.NewGrid(cellSize)
	if err != nil {
		return nil, fmt.Errorf("db: %w", err)
	}
	return &Store{
		byEvent:  make(map[string][]uint64),
		byEntity: make(map[string]uint64),
		grid:     g,
		obs:      make(map[string]event.Observation),
		maxDur:   make(map[string]timemodel.Tick),
	}, nil
}

// at resolves a live sequence number to its instance.
//
//stcps:holds mu
func (s *Store) at(seq uint64) *event.Instance {
	return &s.log[seq-s.base]
}

// SetRetention installs (or replaces) the eviction policy and enforces
// it immediately.
func (s *Store) SetRetention(r Retention) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ret = r
	s.enforceRetentionLocked()
}

// Retention returns the active eviction policy.
func (s *Store) Retention() Retention {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ret
}

// Stats returns a snapshot of the store's contents.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Instances:    len(s.log),
		Observations: len(s.obs),
		Events:       len(s.byEvent),
		Evicted:      s.evicted,
		MaxGen:       s.maxGen,
	}
}

// Log appends an instance. Invalid instances are rejected; duplicate
// entity ids (same observer, event, seq) are idempotently ignored.
func (s *Store) Log(in event.Instance) error {
	_, _, err := s.LogSeq(in)
	return err
}

// LogSeq appends an instance like Log and additionally returns the
// global sequence number assigned to it — the query cursor addressing
// it, which the subscription subsystem stamps on live deliveries so a
// reconnecting subscriber can resume. fresh reports whether the
// instance was newly logged; a duplicate entity id returns its existing
// sequence number with fresh=false.
func (s *Store) LogSeq(in event.Instance) (seq uint64, fresh bool, err error) {
	if err := in.Validate(); err != nil {
		return 0, false, fmt.Errorf("db: log: %w", err)
	}
	id := in.EntityID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, dup := s.byEntity[id]; dup {
		return prev, false, nil
	}
	seq = s.base + uint64(len(s.log))
	s.log = append(s.log, in)
	s.byEntity[id] = seq

	lst := s.byEvent[in.Event]
	// Insert keeping Occ.Start order (instances usually arrive almost in
	// order, so the insertion point is near the end).
	pos := sort.Search(len(lst), func(i int) bool {
		return s.at(lst[i]).Occ.Start() > in.Occ.Start()
	})
	lst = append(lst, 0)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = seq
	s.byEvent[in.Event] = lst

	s.grid.Insert(id, in.Loc)
	if dur := in.Occ.End() - in.Occ.Start(); dur > s.maxDur[in.Event] {
		s.maxDur[in.Event] = dur
	}
	if in.Gen > s.maxGen {
		s.maxGen = in.Gen
	}
	s.enforceRetentionLocked()
	return seq, true, nil
}

// SeqOf resolves an entity id to its global sequence number, reporting
// false when the entity is not live (never logged, or evicted).
func (s *Store) SeqOf(entityID string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seq, ok := s.byEntity[entityID]
	return seq, ok
}

// enforceRetentionLocked evicts from the front of the log until the
// retention bounds hold. Callers hold mu.
//
//stcps:holds mu
func (s *Store) enforceRetentionLocked() {
	if s.ret.MaxAge > 0 {
		for len(s.log) > 0 && s.log[0].Gen < s.maxGen-s.ret.MaxAge {
			s.evictFrontLocked()
		}
	}
	if s.ret.MaxInstances > 0 {
		for len(s.log) > s.ret.MaxInstances {
			s.evictFrontLocked()
		}
	}
}

// evictFrontLocked drops the oldest live instance from the log and every
// index. Callers hold mu and guarantee the log is non-empty.
//
//stcps:holds mu
func (s *Store) evictFrontLocked() {
	in := s.log[0]
	id := in.EntityID()
	delete(s.byEntity, id)
	s.grid.Remove(id)

	lst := s.byEvent[in.Event]
	// The per-event index is start-ordered: binary search to the run of
	// equal starts, then scan it for our sequence number.
	pos := sort.Search(len(lst), func(i int) bool {
		return s.at(lst[i]).Occ.Start() >= in.Occ.Start()
	})
	for pos < len(lst) && lst[pos] != s.base {
		pos++
	}
	if pos < len(lst) {
		lst = append(lst[:pos], lst[pos+1:]...)
	}
	if len(lst) == 0 {
		delete(s.byEvent, in.Event)
	} else {
		s.byEvent[in.Event] = lst
	}

	// Zero before re-slicing so the evicted instance's attribute map and
	// input slice are collectable; append reuses the remaining capacity
	// and reallocates only the live tail, keeping memory flat.
	s.log[0] = event.Instance{}
	s.log = s.log[1:]
	s.base++
	s.evicted++
}

// LogObservation records a raw physical observation for provenance
// resolution.
func (s *Store) LogObservation(o event.Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs[o.EntityID()] = o
}

// Len returns the number of live instances.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// All returns a copy of the live instance log in arrival order.
func (s *Store) All() []event.Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]event.Instance, len(s.log))
	copy(out, s.log)
	return out
}

// Get resolves an instance by its entity id.
func (s *Store) Get(entityID string) (event.Instance, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seq, ok := s.byEntity[entityID]
	if !ok {
		return event.Instance{}, fmt.Errorf("%q: %w", entityID, ErrNotFound)
	}
	return *s.at(seq), nil
}

// QueryTime returns instances of eventID whose estimated occurrence
// intersects [from, to], ordered by occurrence start. An empty eventID
// matches every event (via scan).
func (s *Store) QueryTime(eventID string, from, to timemodel.Tick) []event.Instance {
	if to < from {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	lst, lo, hi := s.timeWindowLocked(eventID, from, to)
	if lst == nil {
		return s.scanTimeLocked("", from, to)
	}
	var out []event.Instance
	for _, seq := range lst[lo:hi] {
		if s.at(seq).Occ.End() >= from {
			out = append(out, *s.at(seq))
		}
	}
	return out
}

// timeWindowLocked returns the slice [lo, hi) of the event's
// start-ordered index that can intersect [from, to]: starts <= to, and
// starts >= from minus the event's longest logged duration (an interval
// reaching into the window cannot have started earlier than that). A
// nil lst means the event id is empty and callers must scan. Callers
// hold mu.
//
//stcps:holds mu
func (s *Store) timeWindowLocked(eventID string, from, to timemodel.Tick) (lst []uint64, lo, hi int) {
	if eventID == "" {
		return nil, 0, 0
	}
	lst = s.byEvent[eventID]
	if lst == nil {
		lst = []uint64{}
	}
	hi = sort.Search(len(lst), func(i int) bool {
		return s.at(lst[i]).Occ.Start() > to
	})
	// Saturate the subtraction: from can be MinInt64 (an open-ended
	// window), where subtracting the duration would wrap positive and
	// empty the window.
	floor := from - s.maxDur[eventID]
	if floor > from {
		lo = 0
		return lst, lo, hi
	}
	lo = sort.Search(hi, func(i int) bool {
		return s.at(lst[i]).Occ.Start() >= floor
	})
	return lst, lo, hi
}

// ScanTime is the unindexed equivalent of QueryTime, retained for the E9
// index-versus-scan experiment and as a testing oracle.
func (s *Store) ScanTime(eventID string, from, to timemodel.Tick) []event.Instance {
	if to < from {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanTimeLocked(eventID, from, to)
}

//stcps:holds mu
func (s *Store) scanTimeLocked(eventID string, from, to timemodel.Tick) []event.Instance {
	var out []event.Instance
	for _, in := range s.log {
		if eventID != "" && in.Event != eventID {
			continue
		}
		if in.Occ.Start() <= to && in.Occ.End() >= from {
			out = append(out, in)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Occ.Start() < out[j].Occ.Start()
	})
	return out
}

// QueryRegion returns instances whose estimated occurrence location is
// Joint with the region, in arrival order.
func (s *Store) QueryRegion(region spatial.Location) []event.Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.grid.QueryRegion(region)
	seqs := make([]uint64, 0, len(ids))
	for _, id := range ids {
		if seq, ok := s.byEntity[id]; ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]event.Instance, len(seqs))
	for i, seq := range seqs {
		out[i] = *s.at(seq)
	}
	return out
}

// ScanRegion is the unindexed equivalent of QueryRegion (E9 experiment /
// testing oracle).
func (s *Store) ScanRegion(region spatial.Location) []event.Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []event.Instance
	for _, in := range s.log {
		if spatial.OpJoint.Apply(in.Loc, region) {
			out = append(out, in)
		}
	}
	return out
}

// Lineage resolves the provenance chain of an entity: the transitive
// closure of Inputs, depth-first, deduplicated, starting from (and
// including) entityID. Unresolvable input ids (e.g. observations that
// were never logged, or instances evicted by retention) are included as
// leaves — the chain back to the original physical observation stays
// intact exactly as the paper requires.
func (s *Store) Lineage(entityID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.byEntity[entityID]; !ok {
		if _, ok := s.obs[entityID]; !ok {
			return nil, fmt.Errorf("%q: %w", entityID, ErrNotFound)
		}
	}
	seen := make(map[string]bool)
	var out []string
	var walk func(id string)
	walk = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		out = append(out, id)
		if seq, ok := s.byEntity[id]; ok { //stcps:ignore guardedby synchronous closure; the enclosing query holds mu
			for _, inp := range s.at(seq).Inputs {
				walk(inp)
			}
		}
	}
	walk(entityID)
	return out, nil
}

// EventIDs lists the distinct event ids with live instances, sorted.
func (s *Store) EventIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byEvent))
	for id := range s.byEvent {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
