package db

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// checkStoreInvariants asserts every index agrees with the chunked log:
// the entity and grid indexes hold exactly the live instances, the time
// index resolves within the retained chunks with accurate live/stale
// bookkeeping, and dead chunks are retired.
func checkStoreInvariants(t *testing.T, s *Store) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := int(s.frontier - s.base)
	if len(s.byEntity) != live {
		t.Fatalf("byEntity %d != live %d", len(s.byEntity), live)
	}
	if s.grid.Len() != live {
		t.Fatalf("grid %d != live %d", s.grid.Len(), live)
	}
	liveTotal, staleTotal := 0, 0
	for ev, lst := range s.byEvent {
		liveSeen := 0
		for i, seq := range lst {
			if seq < s.firstSeq || seq >= s.frontier {
				t.Fatalf("byEvent[%s][%d] = unresolvable seq %d", ev, i, seq)
			}
			in := s.at(seq)
			if in.Event != ev {
				t.Fatalf("byEvent[%s] points at %s", ev, in.Event)
			}
			if i > 0 && s.at(lst[i-1]).Occ.Start() > in.Occ.Start() {
				t.Fatalf("byEvent[%s] start order broken at %d", ev, i)
			}
			if seq >= s.base {
				liveSeen++
			} else {
				staleTotal++
			}
		}
		if liveSeen == 0 {
			t.Fatalf("byEvent[%s] kept with no live entries", ev)
		}
		if liveSeen != s.liveEv[ev] {
			t.Fatalf("liveEv[%s] = %d, want %d", ev, s.liveEv[ev], liveSeen)
		}
		liveTotal += liveSeen
	}
	if liveTotal != live {
		t.Fatalf("byEvent live total %d != live %d", liveTotal, live)
	}
	if staleTotal != s.stale {
		t.Fatalf("stale counter %d != actual stale entries %d", s.stale, staleTotal)
	}
	if int(s.base-s.firstSeq) >= chunkSize {
		t.Fatalf("unretired dead chunk: base %d, firstSeq %d", s.base, s.firstSeq)
	}
	for seq := s.base; seq < s.frontier; seq++ {
		id := s.at(seq).EntityID()
		if got, ok := s.byEntity[id]; !ok || got != seq {
			t.Fatalf("byEntity[%s] = %d, want %d", id, got, seq)
		}
	}
}

// TestQuerySTLockedMatchesQueryST pins the lock-free read plane to the
// retained monolithic-lock reference: on a quiesced store every page —
// instances, seqs, cursor, index choice, scan count, frontier — must be
// byte-identical across both paths, for every retention variant and
// with pagination.
func TestQuerySTLockedMatchesQueryST(t *testing.T) {
	for _, tc := range []struct {
		name string
		ret  Retention
	}{
		{name: "unbounded"},
		{name: "evicting", ret: Retention{MaxInstances: 150}},
		{name: "aged", ret: Retention{MaxAge: 120}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			s := randomStore(t, rng, 400, tc.ret)
			for trial := 0; trial < 80; trial++ {
				q := randomQuery(t, rng)
				if rng.Intn(2) == 0 {
					q.Limit = 1 + rng.Intn(20)
				}
				for page := 0; page < 50; page++ {
					free, errFree := s.QueryST(q.Spec())
					locked, errLocked := s.QuerySTLocked(q.Spec())
					if (errFree == nil) != (errLocked == nil) {
						t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errFree, errLocked)
					}
					if errFree != nil {
						break
					}
					if !reflect.DeepEqual(free, locked) {
						t.Fatalf("trial %d page %d (%+v): lock-free result diverges from locked reference:\nfree:   %+v\nlocked: %+v",
							trial, page, q, free, locked)
					}
					if free.NextCursor == "" {
						break
					}
					q.Cursor = free.NextCursor
				}
				q.Cursor = ""
			}
		})
	}
}

// TestHotEventChurnAmortized evicts 100k instances of a single hot
// event — every occurrence sharing one start tick, the worst case for
// the old per-instance binary-search-then-splice eviction (quadratic in
// the run length). With tombstone counting + periodic compaction the
// whole run completes in amortized O(1) per eviction; before the fix
// this test did not finish in any reasonable time.
func TestHotEventChurnAmortized(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetention(Retention{MaxInstances: 1000})
	const total = 100_000
	occ := timemodel.At(42)
	for i := 0; i < total; i++ {
		in := inst("M", "E.hot", uint64(i+1), occ, spatial.AtPoint(float64(i%50), 0))
		if err := s.Log(in); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	st := s.Stats()
	if st.Evicted != total-1000 {
		t.Fatalf("Evicted = %d, want %d", st.Evicted, total-1000)
	}
	if got := s.QueryTime("E.hot", 0, 100); len(got) != 1000 {
		t.Fatalf("QueryTime after churn = %d, want 1000", len(got))
	}
	checkStoreInvariants(t, s)
}

// TestQuerySTConsistentUnderIngest runs queries concurrently with a
// batched writer on an unbounded store and asserts the bounded-
// staleness contract: every mid-ingest page must be byte-identical to
// the same query against the quiesced store restricted to sequence
// numbers below the frontier the page observed.
// TestQuerySTRegionFallthroughReleasesLock: a region query whose grid
// estimate is no cheaper than the sequential scan falls through to the
// log path. The probe lock (taken whenever a region predicate is
// present) must be released on that path too — a leaked reader blocks
// the next writer forever. Regression: the daemon deadlocked at
// shutdown after serving one broad region query over a small store.
func TestQuerySTRegionFallthroughReleasesLock(t *testing.T) {
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		in := inst("M0", "E0", uint64(i+1), timemodel.At(timemodel.Tick(i)),
			spatial.AtPoint(float64(i), float64(i)))
		if err := s.Log(in); err != nil {
			t.Fatal(err)
		}
	}
	// A region covering every instance: the grid estimate cannot beat
	// the full scan, so the planner takes the log path.
	f, err := spatial.Rect(-100, -100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	region := spatial.InField(f)
	res, err := s.QueryST(Query{Region: &region}.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != n || res.Index != "log" {
		t.Fatalf("region fallthrough = %d instances via %q, want %d via log", len(res.Instances), res.Index, n)
	}
	if !s.mu.TryLock() {
		t.Fatal("store left read-locked after a region query fell through to the log path")
	}
	s.mu.Unlock()
	// The writer path must still make progress.
	if err := s.Log(inst("M0", "E0", n+1, timemodel.At(100), spatial.AtPoint(0, 0))); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySTConsistentUnderIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	const total = 6000
	ins := make([]event.Instance, 0, total)
	for i := 0; i < total; i++ {
		start := timemodel.Tick(rng.Intn(1000))
		in := inst(fmt.Sprintf("M%d", i%3), fmt.Sprintf("E%d", rng.Intn(4)), uint64(i+1),
			timemodel.MustBetween(start, start+timemodel.Tick(rng.Intn(50))),
			spatial.AtPoint(rng.Float64()*100, rng.Float64()*100))
		in.Gen = timemodel.Tick(i)
		ins = append(ins, in)
	}
	queries := make([]Query, 16)
	qrng := rand.New(rand.NewSource(31))
	for i := range queries {
		queries[i] = randomQuery(t, qrng)
	}

	done := make(chan struct{})
	type observed struct {
		q   Query
		res Result
	}
	var results []observed
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(queries)*40; i++ {
			q := queries[i%len(queries)]
			res, err := s.QueryST(q.Spec())
			if err != nil {
				t.Errorf("mid-ingest QueryST: %v", err)
				return
			}
			results = append(results, observed{q: q, res: res})
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	for off := 0; off < total; {
		n := 1 + rng.Intn(64)
		if off+n > total {
			n = total - off
		}
		if n == 1 {
			if err := s.Log(ins[off]); err != nil {
				t.Fatal(err)
			}
		} else if _, _, err := s.LogBatch(ins[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	close(done)
	wg.Wait()

	for i, ob := range results {
		want, err := s.QueryST(ob.q.Spec())
		if err != nil {
			t.Fatal(err)
		}
		wantSeqs := make([]uint64, 0, len(want.Seqs))
		for _, seq := range want.Seqs {
			if seq < ob.res.Frontier {
				wantSeqs = append(wantSeqs, seq)
			}
		}
		gotSeqs := ob.res.Seqs
		if len(gotSeqs) == 0 {
			gotSeqs = nil
		}
		if len(wantSeqs) == 0 {
			wantSeqs = nil
		}
		if !reflect.DeepEqual(gotSeqs, wantSeqs) {
			t.Fatalf("result %d (%+v, frontier %d): mid-ingest seqs %v != quiesced prefix %v",
				i, ob.q, ob.res.Frontier, gotSeqs, wantSeqs)
		}
		for j, in := range ob.res.Instances {
			if quiesced := *s.loadView().at(ob.res.Seqs[j]); !reflect.DeepEqual(in, quiesced) {
				t.Fatalf("result %d seq %d: instance diverged from quiesced store", i, ob.res.Seqs[j])
			}
		}
	}
}

// TestStoreRaceStress drives every concurrent entry point at once —
// single and batched writes, lock-free and locked queries, retention
// flips, snapshots, scans — so the race detector can see any unsafe
// interleaving between the read plane and the write plane.
func TestStoreRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20_000
	ins := make([]event.Instance, 0, total)
	for i := 0; i < total; i++ {
		start := timemodel.Tick(rng.Intn(1000))
		in := inst(fmt.Sprintf("M%d", i%3), fmt.Sprintf("E%d", rng.Intn(4)), uint64(i+1),
			timemodel.MustBetween(start, start+timemodel.Tick(rng.Intn(50))),
			spatial.AtPoint(rng.Float64()*100, rng.Float64()*100))
		in.Gen = timemodel.Tick(i)
		ins = append(ins, in)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	region := spatial.InField(spatial.MustField(
		spatial.Pt(10, 10), spatial.Pt(80, 10), spatial.Pt(80, 80), spatial.Pt(10, 80)))
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(41 + r)))
			q := Query{Event: "E1", Region: &region, HasTime: true, From: 0, To: 800, Limit: 64}
			replay := Query{Limit: 128, Strict: true}
			for {
				select {
				case <-done:
					return
				default:
				}
				switch qrng.Intn(6) {
				case 0:
					res, err := s.QueryST(q.Spec())
					if err != nil {
						t.Errorf("QueryST: %v", err)
						return
					}
					for i, in := range res.Instances {
						if in.Event != "E1" {
							t.Errorf("predicate violated at seq %d", res.Seqs[i])
							return
						}
					}
				case 1:
					// SSE-style strict catch-up: a stale cursor means the
					// retention window passed us — resync from scratch.
					res, err := s.QueryST(replay.Spec())
					if errors.Is(err, ErrStaleCursor) {
						replay.Cursor = ""
						continue
					}
					if err != nil {
						t.Errorf("replay QueryST: %v", err)
						return
					}
					if res.NextCursor != "" {
						replay.Cursor = res.NextCursor
					} else {
						replay.Cursor = ""
					}
				case 2:
					if _, err := s.QuerySTLocked(q.Spec()); err != nil {
						t.Errorf("QuerySTLocked: %v", err)
						return
					}
				case 3:
					_ = s.QueryTime("E2", 100, 400)
					_ = s.ScanRegion(region)
				case 4:
					_ = s.All()
					_ = s.Len()
					_ = s.EventIDs()
					_ = s.Stats()
				case 5:
					if err := s.Snapshot(io.Discard); err != nil {
						t.Errorf("Snapshot: %v", err)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rrng := rand.New(rand.NewSource(43))
		for {
			select {
			case <-done:
				return
			default:
			}
			switch rrng.Intn(3) {
			case 0:
				s.SetRetention(Retention{MaxInstances: 500 + rrng.Intn(4000)})
			case 1:
				s.SetRetention(Retention{MaxAge: timemodel.Tick(1000 + rrng.Intn(10000))})
			default:
				s.SetRetention(Retention{})
			}
		}
	}()

	for off := 0; off < total; {
		n := 1 + rng.Intn(48)
		if off+n > total {
			n = total - off
		}
		if n == 1 {
			if err := s.Log(ins[off]); err != nil {
				t.Fatal(err)
			}
		} else if _, _, err := s.LogBatch(ins[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	close(done)
	wg.Wait()
	s.SetRetention(Retention{MaxInstances: 1500})
	checkStoreInvariants(t, s)
}

// TestLogBatchMatchesLog pins the batched write path to the
// per-instance one: identical inputs produce identical seqs, fresh
// flags, dedup behavior, retention outcome and snapshot bytes.
func TestLogBatchMatchesLog(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	one := randomStore(t, rng, 500, Retention{MaxInstances: 200})
	all := one.All()
	if len(all) != 200 {
		t.Fatalf("fixture: %d live", len(all))
	}

	rng = rand.New(rand.NewSource(47))
	batched, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	batched.SetRetention(Retention{MaxInstances: 200})
	var page []event.Instance
	for i := 0; i < 500; i++ {
		start := timemodel.Tick(rng.Intn(1000))
		length := timemodel.Tick(rng.Intn(50))
		var loc spatial.Location
		if rng.Intn(10) == 0 {
			x, y := rng.Float64()*90, rng.Float64()*90
			f, err := spatial.Rect(x, y, x+5+rng.Float64()*10, y+5+rng.Float64()*10)
			if err != nil {
				t.Fatal(err)
			}
			loc = spatial.InField(f)
		} else {
			loc = spatial.AtPoint(rng.Float64()*100, rng.Float64()*100)
		}
		in := inst(fmt.Sprintf("M%d", i%3), fmt.Sprintf("E%d", rng.Intn(4)), uint64(i+1),
			timemodel.MustBetween(start, start+length), loc)
		in.Gen = timemodel.Tick(i)
		page = append(page, in)
		if len(page) == 37 {
			if _, _, err := batched.LogBatch(page); err != nil {
				t.Fatal(err)
			}
			page = page[:0]
		}
	}
	if _, _, err := batched.LogBatch(page); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(batched.All(), all) {
		t.Fatal("batched ingest diverged from per-instance ingest")
	}

	// Duplicates: a re-sent batch returns the original seqs, none fresh.
	dup := batched.All()[:5]
	seqs, fresh, err := batched.LogBatch(dup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dup {
		want, ok := batched.SeqOf(dup[i].EntityID())
		if !ok || seqs[i] != want || fresh[i] {
			t.Fatalf("dup %d: seq=%d fresh=%v want seq=%d fresh=false", i, seqs[i], fresh[i], want)
		}
	}

	// An invalid instance anywhere fails the whole batch atomically.
	before := batched.Len()
	bad := []event.Instance{dup[0], {}}
	if _, _, err := batched.LogBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if batched.Len() != before {
		t.Fatal("failed batch mutated the store")
	}
}
