package condition

import (
	"fmt"
	"strconv"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Parse compiles a condition-language expression into a type-checked
// composite event condition.
//
// Grammar (keywords are case-insensitive):
//
//	expr       := and { "or" and }
//	and        := unary { "and" unary }
//	unary      := "not" unary | primary
//	primary    := "(" expr ")" | "true" | "false" | comparison
//	comparison := term op term
//	op         := ">" | ">=" | "<" | "<=" | "==" | "!="           (OP_R)
//	            | "before" | "after" | "during" | "begins"
//	            | "ends" | "meets" | "overlaps" | "equals"        (OP_T)
//	            | "inside" | "outside" | "joint" | "equal"
//	            | "covers"                                        (OP_S)
//	term       := factor { ("+"|"-") factor }
//	factor     := NUMBER | "-" NUMBER
//	            | "@" [-] NUMBER | "[" [-]NUMBER "," [-]NUMBER "]"
//	            | IDENT "(" term { "," term } ")"
//	            | IDENT "." ("time"|"start"|"end"|"loc"|ATTR)
//
// Examples from the paper:
//
//	x.time before y.time and dist(x.loc, y.loc) < 5        (S1, Sec. 4.1)
//	x.time + 5 before y.time                               (Sec. 4.1)
//	u.loc inside rect(0, 0, 4, 2)                          (Sec. 4.2)
//	avg(x.v, y.v) > 10                                     (Eq. 4.2)
func Parse(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting with %s", p.peek())
	}
	return e, nil
}

// MustParse is like Parse but panics on error. It is intended for
// condition literals in tests and examples.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) accept(kind tokenKind) (token, bool) {
	if p.peek().kind == kind {
		return p.next(), true
	}
	return token{}, false
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if t, ok := p.accept(kind); ok {
		return t, nil
	}
	return token{}, p.errorf("expected %s, found %s", what, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("at %d: %s: %w", p.peek().pos, fmt.Sprintf(format, args...), ErrSyntax)
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peekKeyword("not") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.peek().kind == tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, `")"`); err != nil {
			return nil, err
		}
		return inner, nil
	case p.peekKeyword("true"):
		p.next()
		return BoolLit{V: true}, nil
	case p.peekKeyword("false"):
		p.next()
		return BoolLit{V: false}, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	opTok := p.peek()
	if opTok.kind == tokRelOp {
		p.next()
		rel, _ := ParseRelOp(opTok.text)
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if left.TermType() != TypeNum || right.TermType() != TypeNum {
			return nil, p.typeErrorf(opTok, "%s needs numeric operands, got %v and %v",
				opTok.text, left.TermType(), right.TermType())
		}
		return CmpNum{L: left, Op: rel, R: right}, nil
	}
	if opTok.kind == tokIdent {
		if top, ok := timemodel.ParseOperator(opTok.text); ok {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if left.TermType() != TypeTime || right.TermType() != TypeTime {
				return nil, p.typeErrorf(opTok, "%s needs temporal operands, got %v and %v",
					opTok.text, left.TermType(), right.TermType())
			}
			return CmpTime{L: left, Op: top, R: right}, nil
		}
		if sop, ok := spatial.ParseOperator(opTok.text); ok {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if left.TermType() != TypeLoc || right.TermType() != TypeLoc {
				return nil, p.typeErrorf(opTok, "%s needs spatial operands, got %v and %v",
					opTok.text, left.TermType(), right.TermType())
			}
			return CmpLoc{L: left, Op: sop, R: right}, nil
		}
	}
	return nil, p.errorf("expected a comparison operator, found %s", opTok)
}

func (p *parser) typeErrorf(at token, format string, args ...any) error {
	return fmt.Errorf("at %d: %s: %w", at.pos, fmt.Sprintf(format, args...), ErrTypeMismatch)
}

func (p *parser) parseTerm() (Term, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var sub bool
		switch p.peek().kind {
		case tokPlus:
			sub = false
		case tokMinus:
			sub = true
		default:
			return left, nil
		}
		opTok := p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		switch {
		case left.TermType() == TypeNum && right.TermType() == TypeNum:
			left = NumArith{L: left, R: right, Sub: sub}
		case left.TermType() == TypeTime && right.TermType() == TypeNum:
			left = TimeShift{T: left, D: right, Neg: sub}
		default:
			return nil, p.typeErrorf(opTok, "cannot apply %q to %v and %v",
				opTok.text, left.TermType(), right.TermType())
		}
	}
}

func (p *parser) parseFactor() (Term, error) {
	switch tok := p.peek(); tok.kind {
	case tokNumber:
		p.next()
		return p.numberLit(tok, false)
	case tokMinus:
		p.next()
		numTok, err := p.expect(tokNumber, "a number")
		if err != nil {
			return nil, err
		}
		return p.numberLit(numTok, true)
	case tokAt:
		p.next()
		v, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		return TimeLit{T: timemodel.At(v)}, nil
	case tokLBracket:
		p.next()
		start, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, `","`); err != nil {
			return nil, err
		}
		end, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, `"]"`); err != nil {
			return nil, err
		}
		tm, terr := timemodel.Between(start, end)
		if terr != nil {
			return nil, fmt.Errorf("at %d: %w", tok.pos, terr)
		}
		return TimeLit{T: tm}, nil
	case tokIdent:
		p.next()
		if _, ok := p.accept(tokLParen); ok {
			return p.parseCall(tok)
		}
		if _, ok := p.accept(tokDot); ok {
			field, err := p.expect(tokIdent, "a field name after '.'")
			if err != nil {
				return nil, err
			}
			switch field.text {
			case "time":
				return TimeRef{Role: tok.text, Part: WholeTime}, nil
			case "start":
				return TimeRef{Role: tok.text, Part: StartTime}, nil
			case "end":
				return TimeRef{Role: tok.text, Part: EndTime}, nil
			case "loc":
				return LocRef{Role: tok.text}, nil
			default:
				return AttrRef{Role: tok.text, Name: field.text}, nil
			}
		}
		return nil, p.errorf("bare identifier %q: expected %q.attr, %q.time, %q.loc or a function call",
			tok.text, tok.text, tok.text, tok.text)
	default:
		return nil, p.errorf("expected a term, found %s", tok)
	}
}

func (p *parser) parseCall(name token) (Term, error) {
	var args []Term
	if _, ok := p.accept(tokRParen); !ok {
		for {
			arg, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if _, ok := p.accept(tokComma); ok {
				continue
			}
			if _, err := p.expect(tokRParen, `")" or ","`); err != nil {
				return nil, err
			}
			break
		}
	}
	call, err := NewCall(name.text, args...)
	if err != nil {
		return nil, fmt.Errorf("at %d: %w", name.pos, err)
	}
	return call, nil
}

func (p *parser) numberLit(tok token, neg bool) (Term, error) {
	v, err := strconv.ParseFloat(tok.text, 64)
	if err != nil {
		return nil, fmt.Errorf("at %d: bad number %q: %w", tok.pos, tok.text, ErrSyntax)
	}
	if neg {
		v = -v
	}
	return NumLit{V: v}, nil
}

func (p *parser) parseSignedInt() (timemodel.Tick, error) {
	neg := false
	if _, ok := p.accept(tokMinus); ok {
		neg = true
	}
	tok, err := p.expect(tokNumber, "an integer")
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseInt(tok.text, 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("at %d: bad integer %q: %w", tok.pos, tok.text, ErrSyntax)
	}
	if neg {
		v = -v
	}
	return timemodel.Tick(v), nil
}

// peekKeyword reports whether the next token is the given keyword
// identifier.
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}
