package segment

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/stcps/stcps/internal/event"
)

func openDir(t *testing.T, cfg Config) *Dir {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func scanSeqs(t *testing.T, d *Dir, f Filter) []uint64 {
	t.Helper()
	var seqs []uint64
	if _, err := d.Scan(f, nil, func(seq uint64, in *event.Instance) bool {
		seqs = append(seqs, seq)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestDirSpillScanReopen(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, Config{Dir: root})
	if err := d.Spill(0, mkIns(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(100, mkIns(50, 100)); err != nil {
		t.Fatal(err)
	}
	seqs := scanSeqs(t, d, Filter{})
	if len(seqs) != 150 || seqs[0] != 0 || seqs[149] != 149 {
		t.Fatalf("scan = %d seqs [%d..%d]", len(seqs), seqs[0], seqs[len(seqs)-1])
	}
	if base, end, ok := d.Bounds(); !ok || base != 0 || end != 150 {
		t.Fatalf("Bounds = %d..%d %v", base, end, ok)
	}
	st := d.Stats()
	if st.Segments != 2 || st.Instances != 150 || st.Spills != 2 || st.SpilledInstances != 150 {
		t.Fatalf("stats = %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen re-attaches both segments.
	d2 := openDir(t, Config{Dir: root})
	if got := scanSeqs(t, d2, Filter{MinSeq: 120}); len(got) != 30 || got[0] != 120 {
		t.Fatalf("reopened scan = %v", got)
	}
}

func TestDirSpillContiguity(t *testing.T) {
	d := openDir(t, Config{Dir: t.TempDir()})
	if err := d.Spill(10, mkIns(5, 10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(20, mkIns(5, 20)); err == nil {
		t.Fatal("gap spill accepted")
	}
	if err := d.Spill(15, mkIns(5, 15)); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(0, nil); err != nil {
		t.Fatal("empty spill should be a no-op")
	}
}

func TestDirGC(t *testing.T) {
	d := openDir(t, Config{Dir: t.TempDir(), Retention: Retention{MaxSegments: 2}})
	for i := 0; i < 5; i++ {
		if err := d.Spill(uint64(i*10), mkIns(10, uint64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Segments != 2 || st.GCSegments != 3 {
		t.Fatalf("stats after GC = %+v", st)
	}
	if base, end, ok := d.Bounds(); !ok || base != 30 || end != 50 {
		t.Fatalf("Bounds after GC = %d..%d %v", base, end, ok)
	}
	// GC'd files are gone from disk.
	entries, err := os.ReadDir(d.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d files on disk after GC", len(entries))
	}
}

func TestDirGCMaxAge(t *testing.T) {
	// mkIns stamps gen/occ times 100+i, so segment i*10 covers ticks
	// [100+10i, 109+10i]. MaxAge 15 keeps only segments whose newest
	// tick is within 15 of the global newest (149).
	d := openDir(t, Config{Dir: t.TempDir(), Retention: Retention{MaxAge: 15}})
	for i := 0; i < 5; i++ {
		if err := d.Spill(uint64(i*10), mkIns(10, uint64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	base, _, ok := d.Bounds()
	if !ok || base != 30 {
		t.Fatalf("Bounds base after age GC = %d (%v)", base, ok)
	}
}

func TestDirScanPinsAgainstGC(t *testing.T) {
	d := openDir(t, Config{Dir: t.TempDir()})
	for i := 0; i < 3; i++ {
		if err := d.Spill(uint64(i*10), mkIns(10, uint64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	// Start a scan, and mid-scan retroactively tighten retention and
	// trigger GC by spilling more. The scan must still complete over
	// its pinned snapshot with no gap.
	var seqs []uint64
	var once sync.Once
	_, err := d.Scan(Filter{}, nil, func(seq uint64, in *event.Instance) bool {
		once.Do(func() {
			d.cfg.Retention = Retention{MaxSegments: 1}
			if err := d.Spill(30, mkIns(10, 30)); err != nil {
				t.Error(err)
			}
		})
		seqs = append(seqs, seq)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 30 || seqs[0] != 0 || seqs[29] != 29 {
		t.Fatalf("pinned scan = %d seqs", len(seqs))
	}
	if st := d.Stats(); st.GCSegments == 0 {
		t.Fatal("GC did not run; pin test is vacuous")
	}
}

func TestDirDiscardAfter(t *testing.T) {
	stamp := uint64(0)
	root := t.TempDir()
	d := openDir(t, Config{Dir: root, Stamp: func() uint64 { return stamp }})
	stamp = 5
	if err := d.Spill(0, mkIns(10, 0)); err != nil {
		t.Fatal(err)
	}
	stamp = 9
	if err := d.Spill(10, mkIns(10, 10)); err != nil {
		t.Fatal(err)
	}
	stamp = 14
	if err := d.Spill(20, mkIns(10, 20)); err != nil {
		t.Fatal(err)
	}
	// Recovery from a snapshot covering WAL seq 9: the walSeq-14
	// segment duplicates replayed history and must go.
	if err := d.DiscardAfter(9); err != nil {
		t.Fatal(err)
	}
	if base, end, ok := d.Bounds(); !ok || base != 0 || end != 20 {
		t.Fatalf("Bounds after discard = %d..%d %v", base, end, ok)
	}
	if st := d.Stats(); st.Discarded != 1 {
		t.Fatalf("Discarded = %d", st.Discarded)
	}
	// A discard of an older segment (only possible with a non-monotone
	// stamp) leaves the kept newer run contiguous on its own: coverage
	// shrinks from below, it never develops an interior gap.
	d2 := openDir(t, Config{Dir: t.TempDir(), Stamp: func() uint64 { return stamp }})
	stamp = 20
	_ = d2.Spill(0, mkIns(10, 0))
	stamp = 5
	_ = d2.Spill(10, mkIns(10, 10))
	if err := d2.DiscardAfter(9); err != nil {
		t.Fatal(err)
	}
	if base, end, ok := d2.Bounds(); !ok || base != 10 || end != 20 {
		t.Fatalf("Bounds after mid-chain discard = %d..%d %v", base, end, ok)
	}
}

// TestDirCrashLeftovers simulates every shape a kill mid-spill can
// leave on disk and demands deterministic recovery: tmp files deleted,
// torn/corrupt segments deleted, pre-gap segments deleted, intact
// contiguous suffix attached.
func TestDirCrashLeftovers(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, Config{Dir: root})
	for i := 0; i < 3; i++ {
		if err := d.Spill(uint64(i*10), mkIns(10, uint64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash shape 1: a *.tmp the rename never happened for.
	if err := os.WriteFile(filepath.Join(root, wantSegmentName(30)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash shape 2: a renamed segment whose tail is torn (e.g. the
	// file system persisted the rename but not all data blocks).
	full := filepath.Join(root, wantSegmentName(30))
	writeSegFile(t, full, 30, 0, 16, mkIns(10, 30))
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, b[:len(b)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash shape 3: a mid-chain segment lost entirely (severed chain).
	if err := os.Remove(filepath.Join(root, wantSegmentName(10))); err != nil {
		t.Fatal(err)
	}

	d2 := openDir(t, Config{Dir: root})
	// Only the contiguous suffix [20,30) survives: seg-0 is below the
	// gap left by the deleted seg-10, seg-30 is torn, tmp is noise.
	if base, end, ok := d2.Bounds(); !ok || base != 20 || end != 30 {
		t.Fatalf("recovered Bounds = %d..%d %v", base, end, ok)
	}
	if st := d2.Stats(); st.Discarded != 3 {
		t.Fatalf("Discarded = %d, want 3 (tmp, torn, pre-gap)", st.Discarded)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != wantSegmentName(20) {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("leftover files = %v", names)
	}
	// And recovery is idempotent: a second open sees a clean dir.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3 := openDir(t, Config{Dir: root})
	if st := d3.Stats(); st.Discarded != 0 || st.Segments != 1 {
		t.Fatalf("second recovery not clean: %+v", st)
	}
}

func TestDirClosed(t *testing.T) {
	d := openDir(t, Config{Dir: t.TempDir()})
	if err := d.Spill(0, mkIns(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(5, mkIns(5, 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Spill after close = %v", err)
	}
	if _, err := d.Scan(Filter{}, nil, func(uint64, *event.Instance) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after close = %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestDirConcurrentScanSpill(t *testing.T) {
	d := openDir(t, Config{Dir: t.TempDir(), NoSync: true, Retention: Retention{MaxSegments: 4}})
	if err := d.Spill(0, mkIns(64, 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			it := event.NewInterner()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev, first := uint64(0), true
				if _, err := d.Scan(Filter{}, it, func(seq uint64, in *event.Instance) bool {
					if !first && seq != prev+1 {
						t.Errorf("gap in concurrent scan: %d -> %d", prev, seq)
						return false
					}
					first, prev = false, seq
					return true
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 1; i < 40; i++ {
		if err := d.Spill(uint64(i*64), mkIns(64, uint64(i*64))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if st := d.Stats(); st.GCSegments == 0 {
		t.Fatal("retention never fired; concurrency test is weak")
	}
}

func BenchmarkSegmentScan(b *testing.B) {
	root := b.TempDir()
	d, err := Open(Config{Dir: root, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 8; i++ {
		if err := d.Spill(uint64(i*4096), mkIns(4096, uint64(i*4096))); err != nil {
			b.Fatal(err)
		}
	}
	it := event.NewInterner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := d.Scan(Filter{Event: "S.cold"}, it, func(uint64, *event.Instance) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}
