// Package placement implements the third future-work item of Tan, Vuran,
// Goddard (ICDCSW 2009, Section 6): "we will investigate the event
// condition evaluation at different CPS components."
//
// The same event condition ("temperature above threshold") is evaluated
// at three different observers of the hierarchy, and the experiment
// measures what moves where:
//
//   - AtMote — the sensor mote gates its own observations and only sends
//     sensor event instances when the condition holds (edge evaluation);
//   - AtSink — the mote forwards every observation as an ungated sensor
//     event; the sink evaluates the condition (fog evaluation);
//   - AtCCU — mote and sink both forward unconditionally; the CCU
//     evaluates the condition over the CPS network (cloud evaluation).
//
// The metrics are WSN messages, bus messages, and the event detection
// latency at the CCU — experiment E11 in DESIGN.md. The expected shape:
// edge evaluation minimizes radio traffic at identical latency, because
// the condition is a stateless threshold; evaluation placement is a
// traffic/coupling trade-off, not a latency one, until conditions need
// data from multiple motes (then the sink is the lowest level that can
// evaluate at all).
package placement

import (
	"fmt"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/network"
	"github.com/stcps/stcps/internal/node"
	"github.com/stcps/stcps/internal/phys"
	"github.com/stcps/stcps/internal/sim"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/internal/wsn"
)

// Placement selects the observer that evaluates the event condition.
type Placement int

// Evaluation placements.
const (
	// AtMote evaluates at the sensor mote (edge).
	AtMote Placement = iota + 1
	// AtSink evaluates at the WSN sink.
	AtSink
	// AtCCU evaluates at the CPS control unit.
	AtCCU
)

var placementNames = map[Placement]string{
	AtMote: "mote",
	AtSink: "sink",
	AtCCU:  "ccu",
}

// String returns the placement name.
func (p Placement) String() string {
	if s, ok := placementNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// All lists placements in hierarchy order.
func All() []Placement { return []Placement{AtMote, AtSink, AtCCU} }

// Config parameterizes one placement run.
type Config struct {
	// Placement is where the condition is evaluated.
	Placement Placement
	// SamplingPeriod is the mote's sampling period.
	SamplingPeriod timemodel.Tick
	// HopDelay is the WSN per-hop delay.
	HopDelay timemodel.Tick
	// BusDelay is the CPS network delay.
	BusDelay timemodel.Tick
	// StepAt is the stimulus tick.
	StepAt timemodel.Tick
	// Horizon is the run length after the step.
	Horizon timemodel.Tick
	// Seed drives the simulation.
	Seed int64
}

func (c *Config) normalize() error {
	switch c.Placement {
	case AtMote, AtSink, AtCCU:
	default:
		return fmt.Errorf("placement: unknown placement %v", c.Placement)
	}
	if c.SamplingPeriod <= 0 {
		return fmt.Errorf("placement: sampling period %d must be positive", c.SamplingPeriod)
	}
	if c.StepAt <= 0 {
		c.StepAt = 200
	}
	if c.Horizon <= 0 {
		c.Horizon = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Result reports what one placement cost.
type Result struct {
	// Placement is the evaluated configuration.
	Placement Placement
	// WSNSent counts radio messages originated by the mote.
	WSNSent uint64
	// BusPublished counts CPS-network publishes.
	BusPublished uint64
	// Detections counts condition matches at the final observer.
	Detections int
	// FirstEDL is the detection latency of the first match at the CCU
	// (-1 when never detected).
	FirstEDL timemodel.Tick
}

// String renders one E11 table row.
func (r Result) String() string {
	return fmt.Sprintf("%-5s wsn=%-4d bus=%-4d detections=%-4d firstEDL=%d",
		r.Placement, r.WSNSent, r.BusPublished, r.Detections, r.FirstEDL)
}

const threshold = "x.temp > 50"

// Run executes one placement experiment.
func Run(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	sched := sim.New(cfg.Seed)
	world, err := phys.NewWorld(sched, cfg.SamplingPeriod)
	if err != nil {
		return Result{}, err
	}
	if err := world.AddPhenomenon("step", phys.Step{
		Name: "temp", Before: 20, After: 80, At: cfg.StepAt,
	}); err != nil {
		return Result{}, err
	}
	net, err := wsn.New(sched, wsn.Radio{Range: 15, HopDelay: cfg.HopDelay})
	if err != nil {
		return Result{}, err
	}
	bus, err := network.NewSimBus(sched, cfg.BusDelay)
	if err != nil {
		return Result{}, err
	}
	sink, err := node.NewSinkNode(sched, net, bus, nil, "sink", spatial.Pt(0, 0), 0)
	if err != nil {
		return Result{}, err
	}
	if _, err := net.AddMote("m1", spatial.Pt(10, 0)); err != nil {
		return Result{}, err
	}
	if err := net.BuildRoutes(); err != nil {
		return Result{}, err
	}
	mote, err := node.NewMoteNode(sched, world, net, "m1", []node.SensorConfig{
		{ID: "SRt", Attr: "temp", Period: cfg.SamplingPeriod},
	}, nil, 0)
	if err != nil {
		return Result{}, err
	}
	ccu, err := node.NewCCU(sched, bus, nil, "ccu", spatial.Pt(0, 10), 0)
	if err != nil {
		return Result{}, err
	}

	// Conditions per placement: exactly one stage evaluates the
	// threshold; the stages below it forward unconditionally.
	moteCond, sinkCond, ccuCond := "true", "true", "true"
	switch cfg.Placement {
	case AtMote:
		moteCond = threshold
	case AtSink:
		sinkCond = threshold
	case AtCCU:
		ccuCond = threshold
	}
	if err := mote.AddDetector(detect.Spec{
		EventID: "S.t",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "SRt", Window: 1}},
		Cond:    condition.MustParse(moteCond),
	}); err != nil {
		return Result{}, err
	}
	if err := sink.AddDetector(detect.Spec{
		EventID: "CP.t",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "S.t", Window: 1}},
		Cond:    condition.MustParse(sinkCond),
	}); err != nil {
		return Result{}, err
	}
	if err := ccu.AddDetector(detect.Spec{
		EventID: "E.t",
		Roles:   []detect.RoleSpec{{Name: "x", Source: "CP.t", Window: 1}},
		Cond:    condition.MustParse(ccuCond),
	}); err != nil {
		return Result{}, err
	}

	res := Result{Placement: cfg.Placement, FirstEDL: -1}
	if err := bus.Subscribe("tap", "E.t", func(m network.Message) {
		in, ok := m.Payload.(event.Instance)
		if !ok {
			return
		}
		res.Detections++
		if res.FirstEDL < 0 {
			res.FirstEDL = in.Gen - cfg.StepAt
		}
	}); err != nil {
		return Result{}, err
	}
	if err := mote.Start(); err != nil {
		return Result{}, err
	}
	sched.Run(cfg.StepAt + cfg.Horizon)

	res.WSNSent = net.Stats().Sent
	res.BusPublished = bus.Stats().Published
	return res, nil
}

// Sweep runs all three placements under one configuration.
func Sweep(base Config) ([]Result, error) {
	out := make([]Result, 0, 3)
	for _, p := range All() {
		cfg := base
		cfg.Placement = p
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
