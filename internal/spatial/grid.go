package spatial

import (
	"fmt"
	"math"
)

// Grid is a uniform spatial hash index over locations. The database server
// (Section 3) uses it for region retrieval of event instances; it is also
// reusable for neighbor queries in the sensor network substrate.
//
// Grid is not safe for concurrent use; callers synchronize externally.
type Grid struct {
	cell  float64
	cells map[cellKey][]string
	locs  map[string]Location
	// ext is the cell extent ever populated, grow-only (removals do not
	// shrink it). Queries clamp their rect to it, so an arbitrarily large
	// query region costs at most the populated extent — never
	// O(area/cell²) of the request.
	ext    cellExtent
	hasExt bool
}

type cellKey struct{ cx, cy int }

// cellExtent is an inclusive cell-coordinate bounding box.
type cellExtent struct{ x0, y0, x1, y1 int }

// NewGrid returns a grid index with the given cell size. Cell size must be
// positive.
func NewGrid(cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("spatial: grid cell size %g must be positive", cellSize)
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]string),
		locs:  make(map[string]Location),
	}, nil
}

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return len(g.locs) }

// Insert indexes the location under id, replacing any previous entry for
// the same id.
func (g *Grid) Insert(id string, loc Location) {
	if _, ok := g.locs[id]; ok {
		g.Remove(id)
	}
	g.locs[id] = loc
	x0, y0, x1, y1 := g.cellRange(bboxOf(loc))
	if !g.hasExt {
		g.ext = cellExtent{x0: x0, y0: y0, x1: x1, y1: y1}
		g.hasExt = true
	} else {
		if x0 < g.ext.x0 {
			g.ext.x0 = x0
		}
		if y0 < g.ext.y0 {
			g.ext.y0 = y0
		}
		if x1 > g.ext.x1 {
			g.ext.x1 = x1
		}
		if y1 > g.ext.y1 {
			g.ext.y1 = y1
		}
	}
	for _, k := range g.keysFor(loc) {
		g.cells[k] = append(g.cells[k], id)
	}
}

// Remove drops the entry for id. Removing an unknown id is a no-op.
func (g *Grid) Remove(id string) {
	loc, ok := g.locs[id]
	if !ok {
		return
	}
	delete(g.locs, id)
	for _, k := range g.keysFor(loc) {
		bucket := g.cells[k]
		for i, v := range bucket {
			if v == id {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(g.cells, k)
		} else {
			g.cells[k] = bucket
		}
	}
}

// QueryRegion returns the ids of all entries whose location is Joint with
// the query region. Results are exact (candidates from the grid are
// verified with the Joint operator) and unordered.
func (g *Grid) QueryRegion(region Location) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, k := range g.queryKeys(bboxOf(region)) {
		for _, id := range g.cells[k] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			if OpJoint.Apply(g.locs[id], region) {
				out = append(out, id)
			}
		}
	}
	return out
}

// QueryRadius returns the ids of all entries within dist of the center
// point.
func (g *Grid) QueryRadius(center Point, dist float64) []string {
	if dist < 0 {
		return nil
	}
	b := rect{
		minX: center.X - dist, minY: center.Y - dist,
		maxX: center.X + dist, maxY: center.Y + dist,
	}
	seen := make(map[string]struct{})
	var out []string
	for _, k := range g.queryKeys(b) {
		for _, id := range g.cells[k] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			if Dist(g.locs[id], AtPt(center)) <= dist+Epsilon {
				out = append(out, id)
			}
		}
	}
	return out
}

// EstimateRegion returns an upper bound on the number of entries a
// QueryRegion over the region would verify (entries spanning several
// cells are counted once per overlapped cell). It is the grid's
// cardinality estimate for query planning and costs at most the number
// of populated cells.
func (g *Grid) EstimateRegion(region Location) int {
	n := 0
	for _, k := range g.queryKeys(bboxOf(region)) {
		n += len(g.cells[k])
	}
	return n
}

// bboxOf returns the bounding box of a location.
func bboxOf(loc Location) rect {
	if f, ok := loc.Field(); ok {
		return f.bbox
	}
	p := loc.Point()
	return rect{minX: p.X, minY: p.Y, maxX: p.X, maxY: p.Y}
}

// keysFor returns every grid cell overlapped by the location's bounding
// box, exactly — the insert/remove path, where the cell set must match
// the entry's own extent.
func (g *Grid) keysFor(loc Location) []cellKey {
	x0, y0, x1, y1 := g.cellRange(bboxOf(loc))
	keys := make([]cellKey, 0, (x1-x0+1)*(y1-y0+1))
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			keys = append(keys, cellKey{cx: cx, cy: cy})
		}
	}
	return keys
}

// cellRange converts a rect to inclusive cell coordinates.
func (g *Grid) cellRange(b rect) (x0, y0, x1, y1 int) {
	return int(math.Floor(b.minX / g.cell)), int(math.Floor(b.minY / g.cell)),
		int(math.Floor(b.maxX / g.cell)), int(math.Floor(b.maxY / g.cell))
}

// queryKeys returns the populated cells overlapped by a query rect. The
// rect is clamped to the extent ever populated — in float space, so an
// arbitrarily large rect (e.g. QueryRadius at dist=1e9) cannot overflow
// cell coordinates — and when the clamped rect still covers more cells
// than exist, the populated cells are filtered directly instead of
// enumerated.
func (g *Grid) queryKeys(b rect) []cellKey {
	if len(g.cells) == 0 {
		return nil
	}
	x0, y0, x1, y1 := g.ext.x0, g.ext.y0, g.ext.x1, g.ext.y1
	// Tighten each bound only when the rect's edge falls inside the
	// extent. The comparisons stay in float space: a coordinate past
	// the opposite extent edge means an empty intersection, and is
	// rejected before any int conversion — int(f) for f beyond int64
	// range would wrap instead of saturating.
	if f := math.Floor(b.minX / g.cell); f > float64(x0) {
		if f > float64(x1) {
			return nil
		}
		x0 = int(f)
	}
	if f := math.Floor(b.minY / g.cell); f > float64(y0) {
		if f > float64(y1) {
			return nil
		}
		y0 = int(f)
	}
	if f := math.Floor(b.maxX / g.cell); f < float64(x1) {
		if f < float64(x0) {
			return nil
		}
		x1 = int(f)
	}
	if f := math.Floor(b.maxY / g.cell); f < float64(y1) {
		if f < float64(y0) {
			return nil
		}
		y1 = int(f)
	}
	if x1 < x0 || y1 < y0 {
		return nil
	}
	w, h := x1-x0+1, y1-y0+1
	// Compare width and height before multiplying: both are bounded by
	// the populated extent, but their product can still overflow.
	if w > len(g.cells) || h > len(g.cells) || w*h > len(g.cells) {
		keys := make([]cellKey, 0, len(g.cells))
		for k := range g.cells {
			if k.cx >= x0 && k.cx <= x1 && k.cy >= y0 && k.cy <= y1 {
				keys = append(keys, k)
			}
		}
		return keys
	}
	keys := make([]cellKey, 0, w*h)
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			keys = append(keys, cellKey{cx: cx, cy: cy})
		}
	}
	return keys
}
