package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/stcps/stcps"
	"github.com/stcps/stcps/internal/db"
)

// api serves the spatio-temporal query endpoints from the daemon's live
// store-backed engine, concurrently with stdin ingest. The store is
// internally synchronized, so queries never block the feed beyond its
// RWMutex.
type api struct {
	eng      *stcps.Engine
	observer string
	events   int
	workers  int
	ingested *atomic.Uint64
	skipped  *atomic.Uint64
	emitted  *atomic.Uint64
	wire     *wireStats      // nil without -tcp
	cluster  *clusterRuntime // nil without -cluster
}

// handler builds the query API routes. Every endpoint is mounted twice:
// under the versioned /v1/ prefix (the documented contract, see
// docs/http.md) and at its historical unversioned path, kept as an
// alias for pre-versioning clients.
func (a *api) handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range []struct {
		pattern string
		fn      http.HandlerFunc
	}{
		{"/healthz", a.healthz},
		{"/stats", a.stats},
		{"/query", a.query},
		{"/lineage/{entity}", a.lineage},
		{"/subscribe", a.subscribe},
		{"/subscriptions", a.subscriptions},
	} {
		mux.HandleFunc("GET /v1"+r.pattern, r.fn)
		mux.HandleFunc("GET "+r.pattern, r.fn)
	}
	return mux
}

func (a *api) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// detectStats is the /stats view of the detection planner's evaluation
// counters.
type detectStats struct {
	// BindingsProbed counts candidate bindings the detectors examined.
	BindingsProbed uint64 `json:"bindingsProbed"`
	// BindingsPruned counts window entries skipped without evaluation
	// (insertion-time filters and index probes).
	BindingsPruned uint64 `json:"bindingsPruned"`
	// Truncations counts evaluation rounds cut short by maxBindings.
	Truncations uint64 `json:"truncations"`
	// EvalErrors counts failed binding evaluations.
	EvalErrors uint64 `json:"evalErrors"`
}

// statsResponse is the /stats document: daemon counters, the detection
// planner's counters and plans, and the store's content counters.
type statsResponse struct {
	Observer      string                  `json:"observer"`
	Events        int                     `json:"events"`
	Workers       int                     `json:"workers"`
	Ingested      uint64                  `json:"ingested"`
	Skipped       uint64                  `json:"skipped"`
	Emitted       uint64                  `json:"emitted"`
	Detect        detectStats             `json:"detect"`
	Plans         []string                `json:"plans"`
	Store         stcps.StoreStats        `json:"store"`
	Durability    stcps.DurabilityStats   `json:"durability"`
	Subscriptions stcps.SubscriptionStats `json:"subscriptions"`
	Wire          *wireStatsView          `json:"wire,omitempty"`
	Cluster       *clusterStatsView       `json:"cluster,omitempty"`
}

func (a *api) stats(w http.ResponseWriter, _ *http.Request) {
	es := a.eng.Stats()
	var wv *wireStatsView
	if a.wire != nil {
		v := a.wire.view()
		wv = &v
	}
	var cv *clusterStatsView
	if a.cluster != nil {
		cv = a.cluster.statsView()
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Observer: a.observer,
		Events:   a.events,
		Workers:  a.workers,
		Ingested: a.ingested.Load(),
		Skipped:  a.skipped.Load(),
		Emitted:  a.emitted.Load(),
		Detect: detectStats{
			BindingsProbed: es.BindingsProbed,
			BindingsPruned: es.BindingsPruned,
			Truncations:    es.Truncations,
			EvalErrors:     es.EvalErrors,
		},
		Plans:         a.eng.PlanDescriptions(),
		Store:         a.eng.StoreStats(),
		Durability:    a.eng.DurabilityStats(),
		Subscriptions: a.eng.SubscriptionStats(),
		Wire:          wv,
		Cluster:       cv,
	})
}

// queryResponse is one /query page.
type queryResponse struct {
	Count      int              `json:"count"`
	Instances  []stcps.Instance `json:"instances"`
	NextCursor string           `json:"nextCursor,omitempty"`
	Index      string           `json:"index"`
	Scanned    int              `json:"scanned"`
	// Cold reports the segment-tier portion of the page (present when
	// the query touched cold storage).
	Cold *db.ColdScan `json:"cold,omitempty"`
}

// stPredicates is the event/region/window parameter triple shared by
// GET /query and GET /subscribe.
type stPredicates struct {
	event    string
	region   *stcps.Location
	hasTime  bool
	from, to stcps.Tick
}

// parseSTPredicates reads event=&x1=&y1=&x2=&y2=&from=&to=. The region
// is an axis-aligned rectangle (all four corners or none); from/to
// bound the occurrence window (either implies the other's extreme).
func parseSTPredicates(v url.Values) (stPredicates, error) {
	p := stPredicates{event: v.Get("event")}
	var corner [4]float64
	given := 0
	for i, name := range [...]string{"x1", "y1", "x2", "y2"} {
		s := v.Get(name)
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return p, fmt.Errorf("bad %s: %w", name, err)
		}
		corner[i] = f
		given++
	}
	switch given {
	case 0:
	case 4:
		f, err := stcps.Rect(corner[0], corner[1], corner[2], corner[3])
		if err != nil {
			return p, fmt.Errorf("bad region: %w", err)
		}
		loc := stcps.InField(f)
		p.region = &loc
	default:
		return p, fmt.Errorf("region needs all of x1, y1, x2, y2")
	}
	fromS, toS := v.Get("from"), v.Get("to")
	if fromS != "" || toS != "" {
		p.hasTime = true
		p.from, p.to = stcps.Tick(math.MinInt64), stcps.Tick(math.MaxInt64)
		if fromS != "" {
			t, err := strconv.ParseInt(fromS, 10, 64)
			if err != nil {
				return p, fmt.Errorf("bad from: %w", err)
			}
			p.from = stcps.Tick(t)
		}
		if toS != "" {
			t, err := strconv.ParseInt(toS, 10, 64)
			if err != nil {
				return p, fmt.Errorf("bad to: %w", err)
			}
			p.to = stcps.Tick(t)
		}
	}
	return p, nil
}

// query answers
// GET /v1/query?event=&x1=&y1=&x2=&y2=&from=&to=&limit=&cursor=&tier=&strict=.
// The versioned path reads all storage tiers by default; the legacy
// unversioned alias predates the cold tier and pins tier=hot unless the
// request says otherwise.
func (a *api) query(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query()
	p, err := parseSTPredicates(v)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := stcps.QuerySpec{
		Event: p.event, Region: p.region,
		Cursor: v.Get("cursor"),
	}
	if p.hasTime {
		spec.Window = &stcps.TimeWindow{From: p.from, To: p.to}
	}
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		spec.Tier = stcps.TierHot
	}
	if s := v.Get("tier"); s != "" {
		t, err := db.ParseTier(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spec.Tier = t
	}
	if s := v.Get("strict"); s != "" {
		b, err := strconv.ParseBool(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad strict %q", s)
			return
		}
		spec.Strict = b
	}
	if s := v.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", s)
			return
		}
		spec.Limit = n
	}

	if a.cluster != nil {
		// Clustered query: partition=N serves one local partition page
		// for peer gateways; otherwise scatter-gather across the
		// cluster, merged in HLC order under one composite cursor.
		if ps := v.Get("partition"); ps != "" {
			a.cluster.partitionPage(w, spec, ps)
			return
		}
		a.cluster.gather(w, v, spec)
		return
	}

	res, err := a.eng.QueryST(spec)
	switch {
	case errors.Is(err, db.ErrBadCursor):
		httpErrorCode(w, http.StatusBadRequest, "bad_cursor", "%v", err)
		return
	case errors.Is(err, db.ErrStaleCursor):
		httpError(w, http.StatusGone, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := queryResponse{
		Count:      len(res.Instances),
		Instances:  res.Instances,
		NextCursor: res.NextCursor,
		Index:      res.Index,
		Scanned:    res.Scanned,
	}
	if res.Cold.Segments > 0 {
		cold := res.Cold
		out.Cold = &cold
	}
	writeJSON(w, http.StatusOK, out)
}

// lineageResponse is the /lineage/{entity} document.
type lineageResponse struct {
	Entity string   `json:"entity"`
	Chain  []string `json:"chain"`
}

func (a *api) lineage(w http.ResponseWriter, r *http.Request) {
	entity := r.PathValue("entity")
	chain, err := a.eng.Lineage(entity)
	switch {
	case errors.Is(err, db.ErrNotFound):
		httpError(w, http.StatusNotFound, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, lineageResponse{Entity: entity, Chain: chain})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorResponse is the uniform error envelope of every endpoint:
// a human-readable message plus a stable machine-readable code.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// defaultCode maps a status to its envelope code when the handler has
// no more specific one (e.g. bad_cursor refines 400).
func defaultCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusGone:
		return "stale_cursor"
	default:
		return "internal"
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	httpErrorCode(w, status, defaultCode(status), format, args...)
}

func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}
