package senterr

import (
	"testing"

	"github.com/stcps/stcps/internal/analysis/analysistest"
)

func TestSentErr(t *testing.T) {
	analysistest.Run(t, "testdata/sent", Analyzer)
}
