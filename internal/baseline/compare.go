package baseline

import (
	"fmt"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Scenario is one comparison workload: a primitive event stream and the
// composite query the engines should detect over it.
type Scenario struct {
	// Name identifies the scenario.
	Name string
	// Class is the relation family exercised: "sequence", "conjunction",
	// "during", "overlap", "spatial", "spatio-temporal".
	Class string
	// Prims is the input stream in arrival order.
	Prims []Prim
	// WantDetect reports whether the target composite actually occurs in
	// the stream (scenarios with negative cases keep engines honest).
	WantDetect bool
	// Cond is the ST-CPS condition expressing the query over roles x
	// (primitive "A") and y (primitive "B").
	Cond string
}

// StandardScenarios returns the E8 suite. Primitive ids are always "A"
// and "B".
func StandardScenarios() []Scenario {
	nearA := spatial.AtPoint(0, 0)
	nearB := spatial.AtPoint(3, 0)
	farB := spatial.AtPoint(40, 0)
	return []Scenario{
		{
			Name:  "sequence",
			Class: "sequence",
			Prims: []Prim{
				{ID: "A", Time: timemodel.At(10), Loc: nearA},
				{ID: "B", Time: timemodel.At(30), Loc: nearB},
			},
			WantDetect: true,
			Cond:       "x.time before y.time",
		},
		{
			Name:  "sequence-negative",
			Class: "sequence",
			Prims: []Prim{
				{ID: "B", Time: timemodel.At(10), Loc: nearB},
				{ID: "A", Time: timemodel.At(30), Loc: nearA},
			},
			WantDetect: false,
			Cond:       "x.time before y.time",
		},
		{
			Name:  "conjunction",
			Class: "conjunction",
			Prims: []Prim{
				{ID: "B", Time: timemodel.At(12), Loc: nearB},
				{ID: "A", Time: timemodel.At(25), Loc: nearA},
			},
			WantDetect: true,
			Cond:       "true",
		},
		{
			Name:  "during",
			Class: "during",
			Prims: []Prim{
				{ID: "B", Time: timemodel.MustBetween(10, 60), Loc: nearB},
				{ID: "A", Time: timemodel.MustBetween(20, 40), Loc: nearA},
			},
			WantDetect: true,
			Cond:       "x.time during y.time",
		},
		{
			Name:  "during-negative",
			Class: "during",
			Prims: []Prim{
				{ID: "B", Time: timemodel.MustBetween(10, 30), Loc: nearB},
				{ID: "A", Time: timemodel.MustBetween(20, 40), Loc: nearA},
			},
			WantDetect: false,
			Cond:       "x.time during y.time",
		},
		{
			Name:  "overlap",
			Class: "overlap",
			Prims: []Prim{
				{ID: "A", Time: timemodel.MustBetween(10, 30), Loc: nearA},
				{ID: "B", Time: timemodel.MustBetween(25, 50), Loc: nearB},
			},
			WantDetect: true,
			Cond:       "x.time overlaps y.time",
		},
		{
			Name:  "spatial",
			Class: "spatial",
			Prims: []Prim{
				{ID: "A", Time: timemodel.At(10), Loc: nearA},
				{ID: "B", Time: timemodel.At(11), Loc: nearB},
			},
			WantDetect: true,
			Cond:       "dist(x.loc, y.loc) < 5",
		},
		{
			Name:  "spatial-negative",
			Class: "spatial",
			Prims: []Prim{
				{ID: "A", Time: timemodel.At(10), Loc: nearA},
				{ID: "B", Time: timemodel.At(11), Loc: farB},
			},
			WantDetect: false,
			Cond:       "dist(x.loc, y.loc) < 5",
		},
		{
			Name:  "spatio-temporal-S1",
			Class: "spatio-temporal",
			Prims: []Prim{
				{ID: "A", Time: timemodel.At(10), Loc: nearA},
				{ID: "B", Time: timemodel.At(30), Loc: nearB},
			},
			WantDetect: true,
			Cond:       "x.time before y.time and dist(x.loc, y.loc) < 5",
		},
		{
			Name:  "spatio-temporal-S1-negative",
			Class: "spatio-temporal",
			Prims: []Prim{
				{ID: "A", Time: timemodel.At(10), Loc: nearA},
				{ID: "B", Time: timemodel.At(30), Loc: farB},
			},
			WantDetect: false,
			Cond:       "x.time before y.time and dist(x.loc, y.loc) < 5",
		},
	}
}

// EngineName identifies a compared engine.
type EngineName string

// Compared engines.
const (
	// EnginePoint is the Snoop-style point-based composite engine.
	EnginePoint EngineName = "point-eca"
	// EngineInterval is the SnoopIB-style interval engine.
	EngineInterval EngineName = "interval-eca"
	// EngineRTL is the RTL-style timing-constraint monitor.
	EngineRTL EngineName = "rtl"
	// EngineSTCPS is the paper's spatio-temporal event model.
	EngineSTCPS EngineName = "st-cps"
)

// AllEngines lists the compared engines in report order.
func AllEngines() []EngineName {
	return []EngineName{EnginePoint, EngineInterval, EngineRTL, EngineSTCPS}
}

// Expressible reports whether an engine can express a scenario class at
// all — the static half of the E8 comparison, mirroring the paper's
// Section 2 critique table.
func Expressible(e EngineName, class string) bool {
	switch e {
	case EnginePoint:
		return class == "sequence" || class == "conjunction"
	case EngineInterval:
		switch class {
		case "sequence", "conjunction", "during", "overlap":
			return true
		}
		return false
	case EngineRTL:
		return class == "sequence"
	case EngineSTCPS:
		return true
	default:
		return false
	}
}

// Outcome is one engine's result on one scenario.
type Outcome struct {
	// Engine is the engine compared.
	Engine EngineName
	// Scenario is the scenario name.
	Scenario string
	// Class is the scenario class.
	Class string
	// Expressible reports whether the query was expressible at all.
	Expressible bool
	// Detected reports whether the engine detected the composite.
	Detected bool
	// Correct reports whether Detected matches the scenario's
	// WantDetect (vacuously false when inexpressible).
	Correct bool
}

// Compare runs every engine over every scenario and returns the outcome
// matrix — the data behind the E8 table.
func Compare(scenarios []Scenario) ([]Outcome, error) {
	var out []Outcome
	for _, sc := range scenarios {
		for _, eng := range AllEngines() {
			o := Outcome{
				Engine:      eng,
				Scenario:    sc.Name,
				Class:       sc.Class,
				Expressible: Expressible(eng, sc.Class),
			}
			if o.Expressible {
				detected, err := runEngine(eng, sc)
				if err != nil {
					return nil, fmt.Errorf("baseline: %s on %s: %w", eng, sc.Name, err)
				}
				o.Detected = detected
				o.Correct = detected == sc.WantDetect
			}
			out = append(out, o)
		}
	}
	return out, nil
}

// runEngine configures the engine for the scenario's class and feeds the
// stream.
func runEngine(eng EngineName, sc Scenario) (bool, error) {
	switch eng {
	case EnginePoint:
		var op PointOp
		switch sc.Class {
		case "sequence":
			op = PSeq
		case "conjunction":
			op = PAnd
		default:
			return false, fmt.Errorf("inexpressible class %q", sc.Class)
		}
		e, err := NewPointEngine(PointRule{Name: sc.Name, Op: op, A: "A", B: "B"})
		if err != nil {
			return false, err
		}
		detected := false
		for _, p := range sc.Prims {
			if len(e.Offer(p)) > 0 {
				detected = true
			}
		}
		return detected, nil
	case EngineInterval:
		var op IntervalOp
		switch sc.Class {
		case "sequence":
			op = ISeq
		case "conjunction":
			op = IAnd
		case "during":
			op = IDuring
		case "overlap":
			op = IOverlap
		default:
			return false, fmt.Errorf("inexpressible class %q", sc.Class)
		}
		e, err := NewIntervalEngine(IntervalRule{Name: sc.Name, Op: op, A: "A", B: "B"})
		if err != nil {
			return false, err
		}
		detected := false
		for _, p := range sc.Prims {
			if len(e.Offer(p)) > 0 {
				detected = true
			}
		}
		return detected, nil
	case EngineRTL:
		m, err := NewRTLMonitor(RTLConstraint{
			Name: sc.Name, A: "A", B: "B", MinGap: 1, MaxGap: 1 << 30,
		})
		if err != nil {
			return false, err
		}
		detected := false
		for _, p := range sc.Prims {
			if len(m.Offer(p)) > 0 {
				detected = true
			}
		}
		return detected, nil
	case EngineSTCPS:
		return runSTCPS(sc)
	default:
		return false, fmt.Errorf("unknown engine %q", eng)
	}
}

// runSTCPS evaluates the scenario with the full spatio-temporal detector.
func runSTCPS(sc Scenario) (bool, error) {
	cond, err := condition.Parse(sc.Cond)
	if err != nil {
		return false, err
	}
	d, err := detect.New("cmp", detect.Spec{
		EventID: sc.Name,
		Layer:   event.LayerCyber,
		Roles: []detect.RoleSpec{
			{Name: "x", Source: "A"},
			{Name: "y", Source: "B"},
		},
		Cond: cond,
	})
	if err != nil {
		return false, err
	}
	detected := false
	for i, p := range sc.Prims {
		obs := event.Observation{
			Mote: "gen", Sensor: p.ID, Seq: uint64(i + 1),
			Time: p.Time, Loc: p.Loc,
		}
		now := p.Time.End()
		if len(d.Offer(p.ID, obs, 1, now, spatial.AtPoint(0, 0))) > 0 {
			detected = true
		}
	}
	return detected, nil
}
