package placement

import (
	"testing"

	"github.com/stcps/stcps/internal/timemodel"
)

func baseConfig() Config {
	return Config{
		SamplingPeriod: 10,
		HopDelay:       2,
		BusDelay:       3,
		StepAt:         200,
		Horizon:        400,
		Seed:           5,
	}
}

func TestRunValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Placement = Placement(0)
	if _, err := Run(cfg); err == nil {
		t.Error("missing placement should error")
	}
	cfg = baseConfig()
	cfg.Placement = AtMote
	cfg.SamplingPeriod = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero sampling period should error")
	}
}

func TestAllPlacementsDetect(t *testing.T) {
	for _, p := range All() {
		cfg := baseConfig()
		cfg.Placement = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Detections == 0 {
			t.Errorf("%v: no detections", p)
		}
		if res.FirstEDL < 0 {
			t.Errorf("%v: no EDL", p)
		}
		if res.String() == "" {
			t.Error("result must render")
		}
	}
}

// TestE11EdgeEvaluationSavesTraffic is the E11 headline: evaluating at
// the mote sends radically fewer radio messages than forwarding raw
// samples, while first-detection latency stays in the same band.
func TestE11EdgeEvaluationSavesTraffic(t *testing.T) {
	results, err := Sweep(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	byPlace := make(map[Placement]Result, 3)
	for _, r := range results {
		byPlace[r.Placement] = r
	}
	mote, sink, ccu := byPlace[AtMote], byPlace[AtSink], byPlace[AtCCU]

	// Edge evaluation sends only post-step events; sink/CCU placements
	// ship every sample (including the 20 pre-step ones).
	if mote.WSNSent >= sink.WSNSent {
		t.Errorf("edge placement should send less: mote=%d sink=%d", mote.WSNSent, sink.WSNSent)
	}
	if sink.WSNSent != ccu.WSNSent {
		t.Errorf("sink and ccu placements ship the same WSN load: %d vs %d", sink.WSNSent, ccu.WSNSent)
	}
	// CCU placement additionally floods the bus with pre-step publishes.
	if ccu.BusPublished <= mote.BusPublished {
		t.Errorf("ccu placement should publish more: ccu=%d mote=%d", ccu.BusPublished, mote.BusPublished)
	}
	// Latency is placement-invariant for a stateless threshold (same
	// sampling grid, same transport path).
	maxEDL, minEDL := mote.FirstEDL, mote.FirstEDL
	for _, r := range []Result{sink, ccu} {
		if r.FirstEDL > maxEDL {
			maxEDL = r.FirstEDL
		}
		if r.FirstEDL < minEDL {
			minEDL = r.FirstEDL
		}
	}
	if maxEDL-minEDL > timemodel.Tick(baseConfig().SamplingPeriod) {
		t.Errorf("EDL spread %d exceeds one sampling period: %+v", maxEDL-minEDL, results)
	}
}

func TestPlacementString(t *testing.T) {
	if AtMote.String() != "mote" || AtSink.String() != "sink" || AtCCU.String() != "ccu" {
		t.Error("placement names wrong")
	}
	if Placement(9).String() == "" {
		t.Error("unknown placement must render")
	}
}
