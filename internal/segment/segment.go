// Package segment implements the store's cold tier: sorted, immutable
// on-disk segment files that hold event instances evicted from the
// in-memory chunked log, so history survives retention instead of
// vanishing with RAM.
//
// A segment covers one contiguous run of global sequence numbers
// [FirstSeq, FirstSeq+Count). Its records are the canonical binary wire
// encoding of event.Instance (encode∘decode is the identity, so a
// merged hot+cold query page is byte-identical to an all-in-RAM one),
// grouped into blocks and framed with the same len+CRC record framing
// the WAL and the wire protocol use (internal/frame). A footer carries
// a per-block index — sequence range, occurrence-time range,
// generation-time range, grid-cell extent and a cell/event bloom — so a
// query touching a narrow time window or region reads only the blocks
// that can match, without scanning the file. The layout is
// read-at-rest friendly: blocks are located by absolute offset and read
// with pread, so the OS page cache (or an mmap) serves repeated scans.
//
// File layout (all integers little-endian, every section CRC-framed):
//
//	frame: header  { magic, version, firstSeq, count, walSeq, cellSize }
//	frame: block 0 { uvarint(len) ++ instance-wire, ... }
//	...
//	frame: block N-1
//	frame: footer  { header fields again, aggregates, block index }
//	trailer (24 B): footerOff u64 | footerLen u32 | magic u32 | crc32 | pad
//
// A segment becomes visible only by an atomic rename of a fully
// written, fsynced temporary file, so a crash mid-spill leaves a *.tmp
// leftover (deleted at the next open), never a half-visible segment.
// Any torn or bit-flipped section fails its CRC (or the header/footer
// cross-check) and the whole file is rejected with ErrCorrupt — a
// corrupt segment never silently serves a partial page.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync/atomic"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/frame"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Segment errors.
var (
	// ErrCorrupt marks a segment file that failed structural or checksum
	// validation. Corrupt segments are rejected whole — a reader never
	// returns a partial page from one.
	ErrCorrupt = errors.New("segment: corrupt segment file")
	// ErrClosed is returned by operations on a closed Dir.
	ErrClosed = errors.New("segment: directory closed")
)

const (
	// fileMagic opens the header and footer payloads ("STSG").
	fileMagic = 0x47535453
	// trailerMagic marks the fixed trailer ("GSTS").
	trailerMagic = 0x53545347
	// formatVersion is bumped on any layout change.
	formatVersion = 1

	// trailerSize is the fixed tail: footerOff u64 + footerLen u32 +
	// magic u32 + crc32 u32 over the preceding 16 bytes.
	trailerSize = 24

	// headerSize is the header frame's payload size.
	headerSize = 4 + 4 + 8 + 8 + 8 + 8

	// blockEntrySize is one footer block-index entry: off u64, len u32,
	// firstSeq u64, count u32, minStart/maxEnd/minGen/maxGen i64,
	// cx0/cy0/cx1/cy1 i64, cellBloom u64, eventBloom u64.
	blockEntrySize = 8 + 4 + 8 + 4 + 4*8 + 4*8 + 8 + 8

	// footerFixedSize is the footer payload before the block entries:
	// the header fields again, segment aggregates, and the block count.
	footerFixedSize = headerSize + 4*8 + 4

	// DefaultBlockSize is the number of instances per block when
	// Config.BlockSize is zero: large enough to amortize the frame and
	// index entry, small enough that a narrow time window reads little.
	DefaultBlockSize = 512
)

// blockMeta is one footer index entry, the unit of query pruning.
type blockMeta struct {
	off      int64  // file offset of the block frame
	length   uint32 // full frame length (header + payload)
	firstSeq uint64
	count    uint32
	minStart timemodel.Tick // min Occ.Start over the block
	maxEnd   timemodel.Tick // max Occ.End over the block
	minGen   timemodel.Tick
	maxGen   timemodel.Tick
	// Inclusive grid-cell extent of the instances' location bounding
	// boxes, at the segment's cell size.
	cx0, cy0, cx1, cy1 int64
	cellBloom          uint64 // 2-bit-per-cell bloom over covered cells
	eventBloom         uint64 // 2-bit-per-event bloom over event ids
}

// Segment is one open, immutable on-disk segment. Safe for concurrent
// reads; lifecycle (refcount, deletion) is managed by Dir.
type Segment struct {
	path     string
	f        *os.File
	size     int64
	firstSeq uint64
	count    uint64
	walSeq   uint64
	cellSize float64
	minStart timemodel.Tick
	maxEnd   timemodel.Tick
	minGen   timemodel.Tick
	maxGen   timemodel.Tick
	blocks   []blockMeta

	// refs guards the file handle against GC racing scans: the Dir owns
	// one reference; each scan holds one while reading. The handle
	// closes when the count reaches zero after the Dir drops its own
	// (see kill). 0 or negative means dead.
	refs atomic.Int64
}

// end is the first sequence number past the segment.
func (s *Segment) end() uint64 { return s.firstSeq + s.count }

// acquire takes a read reference; false means the segment is dead
// (GC'd) and must be skipped.
func (s *Segment) acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops a reference, closing the file on the last one.
func (s *Segment) release() {
	if s.refs.Add(-1) == 0 {
		_ = s.f.Close()
	}
}

// kill drops the Dir's owning reference: no new scans can acquire the
// segment, and the handle closes once in-flight scans drain.
func (s *Segment) kill() { s.release() }

// cellHash mixes a grid cell coordinate pair into the bloom hash.
func cellHash(cx, cy int64) uint64 {
	h := uint64(cx)*0x9E3779B97F4A7C15 ^ (uint64(cy)+0x632BE59BD9B4E019)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return h
}

// eventHash is FNV-1a over the event id for the event bloom.
func eventHash(ev string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(ev); i++ {
		h ^= uint64(ev[i])
		h *= 1099511628211
	}
	return h
}

// bloomMask derives the two-bit bloom mask from a hash.
func bloomMask(h uint64) uint64 {
	return 1<<(h&63) | 1<<((h>>6)&63)
}

// cellRange converts a bounding box to inclusive cell coordinates at
// the segment's cell size — the same floor-division scheme
// spatial.Grid uses, so hot and cold region pruning agree.
func cellRange(cell float64, minX, minY, maxX, maxY float64) (x0, y0, x1, y1 int64) {
	return int64(math.Floor(minX / cell)), int64(math.Floor(minY / cell)),
		int64(math.Floor(maxX / cell)), int64(math.Floor(maxY / cell))
}

// countingWriter tracks the write offset so block frames record their
// absolute position for the footer index.
type countingWriter struct {
	w   io.Writer
	off int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.off += int64(n)
	return n, err
}

// writeTo streams a complete segment — header, blocks, footer, trailer
// — for instances with sequence numbers firstSeq, firstSeq+1, ... in
// order.
func writeTo(w io.Writer, firstSeq, walSeq uint64, cellSize float64, blockSize int, ins []event.Instance) error {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	cw := &countingWriter{w: w}

	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], firstSeq)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(ins)))
	binary.LittleEndian.PutUint64(hdr[24:32], walSeq)
	binary.LittleEndian.PutUint64(hdr[32:40], math.Float64bits(cellSize))
	if err := frame.WriteFrame(cw, hdr); err != nil {
		return err
	}

	var (
		blocks  []blockMeta
		payload []byte
		scratch []byte
		lenBuf  [binary.MaxVarintLen64]byte
	)
	for bi := 0; bi < len(ins); bi += blockSize {
		hi := bi + blockSize
		if hi > len(ins) {
			hi = len(ins)
		}
		run := ins[bi:hi]
		m := blockMeta{
			off:      cw.off,
			firstSeq: firstSeq + uint64(bi),
			count:    uint32(len(run)),
			minStart: math.MaxInt64, maxEnd: math.MinInt64,
			minGen: math.MaxInt64, maxGen: math.MinInt64,
			cx0: math.MaxInt64, cy0: math.MaxInt64,
			cx1: math.MinInt64, cy1: math.MinInt64,
		}
		payload = payload[:0]
		for i := range run {
			in := &run[i]
			rec, err := event.AppendInstanceWire(scratch[:0], in)
			if err != nil {
				return fmt.Errorf("segment: encode seq %d: %w", m.firstSeq+uint64(i), err)
			}
			scratch = rec
			n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
			payload = append(payload, lenBuf[:n]...)
			payload = append(payload, rec...)

			if s := in.Occ.Start(); s < m.minStart {
				m.minStart = s
			}
			if e := in.Occ.End(); e > m.maxEnd {
				m.maxEnd = e
			}
			if in.Gen < m.minGen {
				m.minGen = in.Gen
			}
			if in.Gen > m.maxGen {
				m.maxGen = in.Gen
			}
			minX, minY, maxX, maxY := in.Loc.Bounds()
			x0, y0, x1, y1 := cellRange(cellSize, minX, minY, maxX, maxY)
			if x0 < m.cx0 {
				m.cx0 = x0
			}
			if y0 < m.cy0 {
				m.cy0 = y0
			}
			if x1 > m.cx1 {
				m.cx1 = x1
			}
			if y1 > m.cy1 {
				m.cy1 = y1
			}
			// Bound the per-instance bloom work: an instance spanning a
			// huge cell area would degrade the bloom to all-ones anyway,
			// so saturate instead of enumerating.
			if (x1-x0+1)*(y1-y0+1) <= 64 {
				for cx := x0; cx <= x1; cx++ {
					for cy := y0; cy <= y1; cy++ {
						m.cellBloom |= bloomMask(cellHash(cx, cy))
					}
				}
			} else {
				m.cellBloom = ^uint64(0)
			}
			m.eventBloom |= bloomMask(eventHash(in.Event))
		}
		m.length = uint32(frame.HeaderSize + len(payload))
		if err := frame.WriteFrame(cw, payload); err != nil {
			return err
		}
		blocks = append(blocks, m)
	}

	footerOff := cw.off
	foot := make([]byte, footerFixedSize+len(blocks)*blockEntrySize)
	copy(foot, hdr)
	o := headerSize
	putTick := func(t timemodel.Tick) {
		binary.LittleEndian.PutUint64(foot[o:], uint64(t))
		o += 8
	}
	minStart, maxEnd := timemodel.Tick(math.MaxInt64), timemodel.Tick(math.MinInt64)
	minGen, maxGen := timemodel.Tick(math.MaxInt64), timemodel.Tick(math.MinInt64)
	for i := range blocks {
		b := &blocks[i]
		if b.minStart < minStart {
			minStart = b.minStart
		}
		if b.maxEnd > maxEnd {
			maxEnd = b.maxEnd
		}
		if b.minGen < minGen {
			minGen = b.minGen
		}
		if b.maxGen > maxGen {
			maxGen = b.maxGen
		}
	}
	putTick(minStart)
	putTick(maxEnd)
	putTick(minGen)
	putTick(maxGen)
	binary.LittleEndian.PutUint32(foot[o:], uint32(len(blocks)))
	o += 4
	for i := range blocks {
		b := &blocks[i]
		binary.LittleEndian.PutUint64(foot[o:], uint64(b.off))
		binary.LittleEndian.PutUint32(foot[o+8:], b.length)
		binary.LittleEndian.PutUint64(foot[o+12:], b.firstSeq)
		binary.LittleEndian.PutUint32(foot[o+20:], b.count)
		binary.LittleEndian.PutUint64(foot[o+24:], uint64(b.minStart))
		binary.LittleEndian.PutUint64(foot[o+32:], uint64(b.maxEnd))
		binary.LittleEndian.PutUint64(foot[o+40:], uint64(b.minGen))
		binary.LittleEndian.PutUint64(foot[o+48:], uint64(b.maxGen))
		binary.LittleEndian.PutUint64(foot[o+56:], uint64(b.cx0))
		binary.LittleEndian.PutUint64(foot[o+64:], uint64(b.cy0))
		binary.LittleEndian.PutUint64(foot[o+72:], uint64(b.cx1))
		binary.LittleEndian.PutUint64(foot[o+80:], uint64(b.cy1))
		binary.LittleEndian.PutUint64(foot[o+88:], b.cellBloom)
		binary.LittleEndian.PutUint64(foot[o+96:], b.eventBloom)
		o += blockEntrySize
	}
	if err := frame.WriteFrame(cw, foot); err != nil {
		return err
	}

	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(footerOff))
	binary.LittleEndian.PutUint32(tr[8:12], uint32(frame.HeaderSize+len(foot)))
	binary.LittleEndian.PutUint32(tr[12:16], trailerMagic)
	binary.LittleEndian.PutUint32(tr[16:20], crc32.ChecksumIEEE(tr[0:16]))
	// tr[20:24] pads the trailer to a fixed 8-byte-aligned size; zero.
	if _, err := cw.Write(tr[:]); err != nil {
		return err
	}
	return nil
}

// open maps a segment file: it validates the trailer, the footer frame,
// the header frame and the block index against each other, rejecting
// the whole file with ErrCorrupt on any inconsistency. The record
// payloads themselves are CRC-validated lazily, block by block, at
// read time.
func open(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	s, err := load(f, path)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

func load(f *os.File, path string) (*Segment, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrCorrupt, path, fmt.Sprintf(format, args...))
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	size := st.Size()
	if size < frame.HeaderSize+headerSize+trailerSize {
		return nil, corrupt("truncated: %d bytes", size)
	}

	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, corrupt("trailer read: %v", err)
	}
	if binary.LittleEndian.Uint32(tr[12:16]) != trailerMagic {
		return nil, corrupt("bad trailer magic")
	}
	if crc32.ChecksumIEEE(tr[0:16]) != binary.LittleEndian.Uint32(tr[16:20]) {
		return nil, corrupt("trailer checksum mismatch")
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	if footerOff < frame.HeaderSize+headerSize || footerLen < frame.HeaderSize+footerFixedSize ||
		footerOff+footerLen != size-trailerSize {
		return nil, corrupt("implausible footer location (%d+%d of %d)", footerOff, footerLen, size)
	}

	foot, err := readFrameAt(f, footerOff, footerLen)
	if err != nil {
		return nil, corrupt("footer: %v", err)
	}
	s := &Segment{path: path, f: f, size: size}
	if err := s.parseFooter(foot, footerOff); err != nil {
		return nil, corrupt("%v", err)
	}

	// Cross-check the header frame: written first, so a file whose
	// header and footer disagree was stitched or corrupted.
	hdr, err := readFrameAt(f, 0, int64(frame.HeaderSize+headerSize))
	if err != nil {
		return nil, corrupt("header: %v", err)
	}
	if string(hdr) != string(foot[:headerSize]) {
		return nil, corrupt("header/footer mismatch")
	}
	s.refs.Store(1)
	return s, nil
}

// readFrameAt reads one complete frame of exactly length bytes at off
// and returns its CRC-verified payload.
func readFrameAt(f *os.File, off, length int64) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	ln := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if int64(ln)+frame.HeaderSize != length {
		return nil, fmt.Errorf("%w: frame length %d != %d", frame.ErrLength, ln, length-frame.HeaderSize)
	}
	payload := buf[frame.HeaderSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, frame.ErrChecksum
	}
	return payload, nil
}

// parseFooter decodes and validates the footer payload.
func (s *Segment) parseFooter(foot []byte, footerOff int64) error {
	if binary.LittleEndian.Uint32(foot[0:4]) != fileMagic {
		return errors.New("bad footer magic")
	}
	if v := binary.LittleEndian.Uint32(foot[4:8]); v != formatVersion {
		return fmt.Errorf("unsupported format version %d", v)
	}
	s.firstSeq = binary.LittleEndian.Uint64(foot[8:16])
	s.count = binary.LittleEndian.Uint64(foot[16:24])
	s.walSeq = binary.LittleEndian.Uint64(foot[24:32])
	s.cellSize = math.Float64frombits(binary.LittleEndian.Uint64(foot[32:40]))
	if !(s.cellSize > 0) || math.IsInf(s.cellSize, 0) {
		return fmt.Errorf("implausible cell size %g", s.cellSize)
	}
	o := headerSize
	s.minStart = timemodel.Tick(binary.LittleEndian.Uint64(foot[o:]))
	s.maxEnd = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+8:]))
	s.minGen = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+16:]))
	s.maxGen = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+24:]))
	o += 32
	nblocks := int(binary.LittleEndian.Uint32(foot[o:]))
	o += 4
	if len(foot) != footerFixedSize+nblocks*blockEntrySize {
		return fmt.Errorf("footer size %d does not hold %d block entries", len(foot), nblocks)
	}
	if s.count == 0 || nblocks == 0 {
		return errors.New("empty segment")
	}
	if s.firstSeq+s.count < s.firstSeq {
		return errors.New("sequence range overflows")
	}
	s.blocks = make([]blockMeta, nblocks)
	next := s.firstSeq
	prevEnd := int64(frame.HeaderSize + headerSize)
	var total uint64
	for i := range s.blocks {
		b := &s.blocks[i]
		b.off = int64(binary.LittleEndian.Uint64(foot[o:]))
		b.length = binary.LittleEndian.Uint32(foot[o+8:])
		b.firstSeq = binary.LittleEndian.Uint64(foot[o+12:])
		b.count = binary.LittleEndian.Uint32(foot[o+20:])
		b.minStart = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+24:]))
		b.maxEnd = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+32:]))
		b.minGen = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+40:]))
		b.maxGen = timemodel.Tick(binary.LittleEndian.Uint64(foot[o+48:]))
		b.cx0 = int64(binary.LittleEndian.Uint64(foot[o+56:]))
		b.cy0 = int64(binary.LittleEndian.Uint64(foot[o+64:]))
		b.cx1 = int64(binary.LittleEndian.Uint64(foot[o+72:]))
		b.cy1 = int64(binary.LittleEndian.Uint64(foot[o+80:]))
		b.cellBloom = binary.LittleEndian.Uint64(foot[o+88:])
		b.eventBloom = binary.LittleEndian.Uint64(foot[o+96:])
		o += blockEntrySize

		if b.off != prevEnd || b.length <= frame.HeaderSize {
			return fmt.Errorf("block %d: implausible frame at %d (+%d)", i, b.off, b.length)
		}
		if b.off+int64(b.length) > footerOff {
			return fmt.Errorf("block %d overruns the footer", i)
		}
		if b.firstSeq != next || b.count == 0 {
			return fmt.Errorf("block %d: sequence range not contiguous", i)
		}
		next = b.firstSeq + uint64(b.count)
		total += uint64(b.count)
		prevEnd = b.off + int64(b.length)
	}
	if total != s.count || prevEnd != footerOff {
		return errors.New("block index does not cover the segment")
	}
	return nil
}

// Filter is the pushed-down predicate set of a cold scan: a sequence
// window plus the QueryST predicates. Blocks (and whole segments) that
// cannot match are skipped via the footer index; every yielded instance
// is verified exactly.
type Filter struct {
	// MinSeq is the first sequence number to yield (inclusive).
	MinSeq uint64
	// MaxSeq bounds the scan exclusively; 0 means unbounded.
	MaxSeq uint64
	// Event filters to one event id; empty matches all.
	Event string
	// Region, when non-nil, keeps instances whose location is Joint
	// with it.
	Region *spatial.Location
	// HasTime gates the occurrence-window predicate [From, To].
	HasTime  bool
	From, To timemodel.Tick
}

// match verifies the non-sequence predicates exactly.
func (f *Filter) match(in *event.Instance) bool {
	if f.Event != "" && in.Event != f.Event {
		return false
	}
	if f.HasTime && (in.Occ.Start() > f.To || in.Occ.End() < f.From) {
		return false
	}
	if f.Region != nil && !spatial.OpJoint.Apply(in.Loc, *f.Region) {
		return false
	}
	return true
}

// pruneBlock reports whether the footer index proves the block cannot
// contain a match.
func (f *Filter) pruneBlock(cellSize float64, b *blockMeta) bool {
	if f.MinSeq >= b.firstSeq+uint64(b.count) {
		return true
	}
	if f.MaxSeq != 0 && f.MaxSeq <= b.firstSeq {
		return true
	}
	if f.HasTime && (b.minStart > f.To || b.maxEnd < f.From) {
		return true
	}
	if f.Event != "" && !bloomHas(b.eventBloom, eventHash(f.Event)) {
		return true
	}
	if f.Region != nil {
		minX, minY, maxX, maxY := f.Region.Bounds()
		qx0, qy0, qx1, qy1 := cellRange(cellSize, minX, minY, maxX, maxY)
		if qx0 < b.cx0 {
			qx0 = b.cx0
		}
		if qy0 < b.cy0 {
			qy0 = b.cy0
		}
		if qx1 > b.cx1 {
			qx1 = b.cx1
		}
		if qy1 > b.cy1 {
			qy1 = b.cy1
		}
		if qx1 < qx0 || qy1 < qy0 {
			return true
		}
		// With a small overlap, consult the bloom cell by cell; a wide
		// one reads the block — enumerating a large rect would cost
		// more than the read it might save.
		if w, h := qx1-qx0+1, qy1-qy0+1; w*h <= 64 {
			hit := false
			for cx := qx0; cx <= qx1 && !hit; cx++ {
				for cy := qy0; cy <= qy1; cy++ {
					if bloomHas(b.cellBloom, cellHash(cx, cy)) {
						hit = true
						break
					}
				}
			}
			if !hit {
				return true
			}
		}
	}
	return false
}

func bloomHas(bloom, h uint64) bool {
	m := bloomMask(h)
	return bloom&m == m
}

// scan yields matching instances of the segment in ascending sequence
// order, pruning blocks via the footer index. fn returning false stops
// the scan early. blocksRead/blocksPruned/records report the work
// done. A CRC or decode failure aborts the whole scan with ErrCorrupt:
// a damaged block never yields a silently partial page.
func (s *Segment) scan(f *Filter, it *event.Interner, fn func(seq uint64, in *event.Instance) bool) (blocksRead, blocksPruned, records int, stopped bool, err error) {
	var buf []byte
	var in event.Instance
	for bi := range s.blocks {
		b := &s.blocks[bi]
		if f.pruneBlock(s.cellSize, b) {
			blocksPruned++
			continue
		}
		if int(b.length) > cap(buf) {
			buf = make([]byte, b.length)
		}
		buf = buf[:b.length]
		if _, rerr := s.f.ReadAt(buf, b.off); rerr != nil {
			return blocksRead, blocksPruned, records, false, fmt.Errorf("%w: %s: block %d: %w", ErrCorrupt, s.path, bi, rerr)
		}
		blocksRead++
		ln := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		payload := buf[frame.HeaderSize:]
		if int(ln) != len(payload) || crc32.ChecksumIEEE(payload) != sum {
			return blocksRead, blocksPruned, records, false, fmt.Errorf("%w: %s: block %d: %w", ErrCorrupt, s.path, bi, frame.ErrChecksum)
		}
		seq := b.firstSeq
		for i := uint32(0); i < b.count; i++ {
			recLen, n := binary.Uvarint(payload)
			if n <= 0 || recLen > uint64(len(payload)-n) {
				return blocksRead, blocksPruned, records, false, fmt.Errorf("%w: %s: block %d: torn record", ErrCorrupt, s.path, bi)
			}
			rec := payload[n : n+int(recLen)]
			payload = payload[n+int(recLen):]
			cur := seq
			seq++
			if cur < f.MinSeq {
				continue
			}
			if f.MaxSeq != 0 && cur >= f.MaxSeq {
				return blocksRead, blocksPruned, records, false, nil
			}
			if derr := event.DecodeInstanceWire(rec, &in, it); derr != nil {
				return blocksRead, blocksPruned, records, false, fmt.Errorf("%w: %s: block %d seq %d: %w", ErrCorrupt, s.path, bi, cur, derr)
			}
			records++
			if !f.match(&in) {
				continue
			}
			if !fn(cur, &in) {
				return blocksRead, blocksPruned, records, true, nil
			}
		}
		if len(payload) != 0 {
			return blocksRead, blocksPruned, records, false, fmt.Errorf("%w: %s: block %d: trailing bytes", ErrCorrupt, s.path, bi)
		}
	}
	return blocksRead, blocksPruned, records, false, nil
}
