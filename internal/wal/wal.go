// Package wal implements the durability subsystem of the database
// server: an append-only, segmented write-ahead log of everything the
// detection engine ingests (raw observations and lower-layer instances)
// and everything it emits (detected event instances).
//
// The paper's architecture stores detected instances in a database
// server "for later retrieval"; the in-memory store (internal/db) loses
// them on a crash. The WAL closes that gap: every record is framed with
// a length prefix and a CRC-32 checksum, appended to the active segment
// file and — depending on the fsync policy — synced to stable storage
// before the engine acts on it. On restart the log is replayed: emitted
// instances are re-logged into the store, and ingested entities are
// re-offered to the detectors so half-bound windows survive the crash.
//
// Record framing (little-endian), shared with the binary wire protocol
// via internal/frame (the format was proven here first and extracted):
//
//	+----------+----------+------------------+
//	| len u32  | crc32 u32| payload (len B)  |
//	+----------+----------+------------------+
//
// The payload is the JSON envelope of one Record. A torn tail (partial
// write from a crash) fails the length or CRC check and is truncated at
// open; torn records in any segment other than the last indicate real
// corruption and fail the open.
//
// Segments are named after the sequence number of their first record
// (%016d.wal) and rotate at Options.SegmentBytes. A snapshot file
// (snapshot-%016d.ndjson, the db.Snapshot NDJSON format) covers every
// record up to the sequence number in its name; sealed segments fully
// covered by the snapshot — and whose ingested entities have all aged
// past the caller-provided horizon, so no window can still need them —
// are deleted by compaction.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/frame"
	"github.com/stcps/stcps/internal/timemodel"
)

// WAL errors.
var (
	// ErrClosed is returned when appending to a closed log.
	ErrClosed = errors.New("wal: closed")
	// ErrCorrupt is returned when a segment other than the last carries a
	// torn or checksum-failing record.
	ErrCorrupt = errors.New("wal: corrupt segment")
	// ErrBadRecord is returned for records that cannot be encoded.
	ErrBadRecord = errors.New("wal: bad record")
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy string

// Fsync policies.
const (
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per record.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a timer (Options.FsyncEvery): a crash loses
	// at most the last interval's records.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs explicitly: the OS page cache decides. A
	// crash of the process alone loses only buffered bytes; a machine
	// crash can lose everything since the last OS writeback.
	FsyncOff FsyncPolicy = "off"
)

// ParsePolicy maps a policy name to its FsyncPolicy; empty selects
// FsyncInterval.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "":
		return FsyncInterval, nil
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
	}
}

// Defaults for Options.
const (
	DefaultFsyncEvery   = 100 * time.Millisecond
	DefaultSegmentBytes = 16 << 20
)

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory, created if missing. Required.
	Dir string
	// Fsync selects the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 16 MiB).
	SegmentBytes int64
}

// Kind classifies a WAL record.
type Kind uint8

// Record kinds.
const (
	// KindObservation is an ingested raw observation.
	KindObservation Kind = 1
	// KindIngest is an ingested lower-layer event instance.
	KindIngest Kind = 2
	// KindEmit is an instance the engine emitted.
	KindEmit Kind = 3
)

// Record is one WAL entry. Seq is assigned by position: the i-th record
// ever appended has Seq i (1-based), so sequence numbers survive
// restarts without being stored.
type Record struct {
	Seq  uint64
	Kind Kind
	// Source, Conf and Now reproduce the ingest call for KindObservation
	// and KindIngest records.
	Source string
	Conf   float64
	Now    timemodel.Tick
	// Instance is set for KindIngest and KindEmit.
	Instance *event.Instance
	// Observation is set for KindObservation.
	Observation *event.Observation
}

// envelope is the JSON payload of a record.
type envelope struct {
	Kind        Kind               `json:"k"`
	Source      string             `json:"src,omitempty"`
	Conf        float64            `json:"conf,omitempty"`
	Now         timemodel.Tick     `json:"now,omitempty"`
	Instance    *event.Instance    `json:"inst,omitempty"`
	Observation *event.Observation `json:"obs,omitempty"`
}

// segMeta describes one segment file.
type segMeta struct {
	path  string
	first uint64 // seq of the first record (from the file name)
	last  uint64 // seq of the last record; first-1 when empty
	bytes int64
	// hasIngest / maxTick track the ingest-kind records, for the
	// compaction horizon: a segment whose ingests all ended before the
	// horizon can no longer contribute to any detection window.
	hasIngest bool
	maxTick   timemodel.Tick
}

// Stats is a snapshot of the log's counters for monitoring endpoints.
type Stats struct {
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// Bytes is the total size of the live segment files.
	Bytes int64 `json:"bytes"`
	// LastSeq is the sequence number of the newest record.
	LastSeq uint64 `json:"lastSeq"`
	// Appended counts records appended by this process.
	Appended uint64 `json:"appended"`
	// Syncs counts explicit fsyncs.
	Syncs uint64 `json:"syncs"`
	// LastSyncUnixMs is the wall-clock time of the last fsync (0 when
	// never synced).
	LastSyncUnixMs int64 `json:"lastSyncUnixMs"`
	// SyncFailures counts failed fsyncs (including the background
	// interval syncer's, which has no caller to report to).
	SyncFailures uint64 `json:"syncFailures"`
	// TornRecords counts torn tail records truncated at open.
	TornRecords uint64 `json:"tornRecords"`
	// SnapshotSeq is the sequence number covered by the latest snapshot.
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// Snapshots counts snapshots written by this process.
	Snapshots uint64 `json:"snapshots"`
	// CompactedSegments counts segments deleted by compaction.
	CompactedSegments uint64 `json:"compactedSegments"`
}

// Log is an append-only write-ahead log over a directory of segment
// files. It is safe for concurrent use.
type Log struct {
	opts Options

	mu     sync.Mutex
	f      *os.File      //stcps:guardedby mu
	w      *bufio.Writer //stcps:guardedby mu
	segs   []segMeta     //stcps:guardedby mu -- ordered; the last one is active
	seq    uint64        //stcps:guardedby mu -- last assigned sequence number
	dirty  bool          //stcps:guardedby mu -- unsynced appends outstanding
	closed bool          //stcps:guardedby mu

	appended  uint64    //stcps:guardedby mu
	syncs     uint64    //stcps:guardedby mu
	lastSync  time.Time //stcps:guardedby mu
	torn      uint64    //stcps:guardedby mu
	snapSeq   uint64    //stcps:guardedby mu
	snapshots uint64    //stcps:guardedby mu
	compacted uint64    //stcps:guardedby mu
	// syncFailures / firstErr record fsync failures — the interval
	// policy's background syncer has no caller to return them to, and a
	// later fsync succeeding does NOT mean the lost pages were written.
	syncFailures uint64 //stcps:guardedby mu
	firstErr     error  //stcps:guardedby mu

	// lock holds the directory lock file (see lockFile) preventing two
	// processes from appending to the same directory.
	lock *os.File

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

const (
	segSuffix  = ".wal"
	snapPrefix = "snapshot-"
	snapSuffix = ".ndjson"
	// maxPayloadBytes bounds one record. Append and the segment readers
	// must agree: a payload Append accepted but the frame reader rejects
	// would brick the log (sealed segment) or silently truncate an
	// acknowledged record (torn-tail handling) at the next open.
	maxPayloadBytes = 64 << 20
)

func segName(first uint64) string { return fmt.Sprintf("%016d%s", first, segSuffix) }
func snapName(seq uint64) string  { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	if _, err := fmt.Sscanf(mid, "%d", &v); err != nil || len(mid) != 16 {
		return 0, false
	}
	return v, true
}

// Open opens (or creates) the log in opts.Dir, scanning every segment to
// rebuild positions and truncating a torn tail left by a crash.
//
//stcps:holds mu -- open-time: the Log is not yet published
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncInterval
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = DefaultFsyncEvery
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts}

	// One process per directory: two appenders interleaving frames into
	// the active segment would corrupt it beyond the torn-tail repair.
	// The lock (see lockFile) is per-process and dies with the process,
	// so a crashed daemon's successor is never blocked; it does NOT
	// guard two engines sharing a Dir inside one process.
	lock, err := os.OpenFile(filepath.Join(opts.Dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: %s is locked by another process: %w", opts.Dir, err)
	}
	l.lock = lock
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segFirsts []uint64
	for _, e := range entries {
		if first, ok := parseSeqName(e.Name(), "", segSuffix); ok {
			segFirsts = append(segFirsts, first)
		}
		if seq, ok := parseSeqName(e.Name(), snapPrefix, snapSuffix); ok && seq > l.snapSeq {
			l.snapSeq = seq
		}
		// A crash between CreateTemp and the rename leaves a tmp file
		// with a full store dump; sweep it.
		if strings.HasPrefix(e.Name(), snapPrefix) && strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(opts.Dir, e.Name()))
		}
	}
	sort.Slice(segFirsts, func(i, j int) bool { return segFirsts[i] < segFirsts[j] })

	var metas []segMeta
	for i, first := range segFirsts {
		meta, err := l.scanSegment(filepath.Join(opts.Dir, segName(first)), first, i == len(segFirsts)-1)
		if err != nil {
			return nil, err
		}
		metas = append(metas, meta)
	}
	// The live log is the maximal contiguous suffix chain. Disconnected
	// earlier segments can only be compaction debris — unlinks whose
	// directory update outlived a crash while an earlier one did not —
	// and must be fully covered by the snapshot; finish deleting them.
	// Anything else disconnected is real corruption.
	start := 0
	for i := len(metas) - 1; i > 0; i-- {
		if metas[i-1].last+1 != metas[i].first {
			start = i
			break
		}
	}
	for _, m := range metas[:start] {
		if m.last > l.snapSeq {
			return nil, fmt.Errorf("%w: segment %s is disconnected and not covered by snapshot %d",
				ErrCorrupt, filepath.Base(m.path), l.snapSeq)
		}
		_ = os.Remove(m.path)
		l.compacted++
	}
	l.segs = metas[start:]
	if len(l.segs) > 0 {
		if first := l.segs[0].first; first > l.snapSeq+1 {
			return nil, fmt.Errorf("%w: records %d..%d missing between snapshot and segment %s",
				ErrCorrupt, l.snapSeq+1, first-1, filepath.Base(l.segs[0].path))
		}
		l.seq = l.segs[len(l.segs)-1].last
	}
	if l.snapSeq > l.seq {
		// Every surviving record is covered by the snapshot (the newer
		// segments did not survive): retire the stale chain and restart
		// numbering after the snapshot.
		for _, m := range l.segs {
			_ = os.Remove(m.path)
			l.compacted++
		}
		l.segs = nil
		l.seq = l.snapSeq
	}

	if len(l.segs) == 0 {
		if err := l.openSegmentLocked(l.seq + 1); err != nil {
			return nil, err
		}
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
	}

	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	ok = true
	return l, nil
}

// scanSegment reads one segment end to end, validating frames. A torn
// tail is truncated when the segment is the last one; otherwise it
// fails the open.
//
//stcps:replay
//stcps:holds mu -- open-time: the Log is not yet published
func (l *Log) scanSegment(path string, first uint64, isLast bool) (segMeta, error) {
	meta := segMeta{path: path, first: first, last: first - 1, maxTick: math.MinInt64}
	f, err := os.Open(path)
	if err != nil {
		return meta, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fr := segmentReader(f)
	var off int64
	for {
		payload, n, err := fr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if !isLast {
				return meta, fmt.Errorf("%w: %s at offset %d: %w", ErrCorrupt, filepath.Base(path), off, err)
			}
			// Torn tail from a crash: drop it.
			if terr := os.Truncate(path, off); terr != nil {
				return meta, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
			l.torn++
			break
		}
		var env envelope
		if jerr := json.Unmarshal(payload, &env); jerr != nil {
			if !isLast {
				return meta, fmt.Errorf("%w: %s at offset %d: %w", ErrCorrupt, filepath.Base(path), off, jerr)
			}
			if terr := os.Truncate(path, off); terr != nil {
				return meta, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
			l.torn++
			break
		}
		off += int64(n)
		meta.last++
		meta.noteIngest(env)
	}
	meta.bytes = off
	return meta, nil
}

// noteIngest folds one record into the segment's compaction metadata.
func (m *segMeta) noteIngest(env envelope) {
	if env.Kind != KindObservation && env.Kind != KindIngest {
		return
	}
	m.hasIngest = true
	if env.Now > m.maxTick {
		m.maxTick = env.Now
	}
}

// segmentReader reads one segment's length+CRC framed payloads. The
// framing itself lives in internal/frame (the WAL is where it was
// first proven and is now one of its consumers); io.EOF signals a
// clean end, any other error marks a torn or corrupt frame.
func segmentReader(f io.Reader) *frame.Reader {
	return frame.NewReader(bufio.NewReader(f), maxPayloadBytes)
}

// openSegmentLocked creates and activates a fresh segment whose first
// record will be seq first. The directory entry is fsynced before any
// record lands in the file — an fsynced record in a file whose creation
// is not durable is lost with it. Callers hold mu (or are in Open).
//
//stcps:holds mu
func (l *Log) openSegmentLocked(first uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(first)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.syncDir(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segs = append(l.segs, segMeta{
		path:    f.Name(),
		first:   first,
		last:    first - 1,
		maxTick: math.MinInt64,
	})
	return nil
}

// syncDir fsyncs the log directory, making file creations, renames and
// removals themselves durable. A no-op under FsyncOff.
func (l *Log) syncDir() error {
	if l.opts.Fsync == FsyncOff {
		return nil
	}
	d, err := os.Open(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: sync dir: %w", cerr)
	}
	return nil
}

// syncLoop is the FsyncInterval timer.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Append writes one record and returns its sequence number. Under
// FsyncAlways the record is on stable storage when Append returns.
func (l *Log) Append(rec Record) (uint64, error) {
	env := envelope{
		Kind:        rec.Kind,
		Source:      rec.Source,
		Conf:        rec.Conf,
		Now:         rec.Now,
		Instance:    rec.Instance,
		Observation: rec.Observation,
	}
	switch rec.Kind {
	case KindObservation:
		if rec.Observation == nil {
			return 0, fmt.Errorf("%w: observation record without observation", ErrBadRecord)
		}
	case KindIngest, KindEmit:
		if rec.Instance == nil {
			return 0, fmt.Errorf("%w: instance record without instance", ErrBadRecord)
		}
	default:
		return 0, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, rec.Kind)
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrBadRecord, err)
	}
	if len(payload) > maxPayloadBytes {
		return 0, fmt.Errorf("%w: payload is %d bytes (max %d)", ErrBadRecord, len(payload), maxPayloadBytes)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	var hdr [frame.HeaderSize]byte
	frame.PutHeader(hdr[:], payload)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq++
	l.appended++
	l.dirty = true
	active := &l.segs[len(l.segs)-1]
	active.last = l.seq
	active.bytes += int64(frame.HeaderSize + len(payload))
	active.noteIngest(env)
	seq := l.seq

	if l.opts.Fsync == FsyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if active.bytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked seals the active segment (flushing and syncing it so a
// sealed segment is always durable) and opens the next one.
//
//stcps:holds mu
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	return l.openSegmentLocked(l.seq + 1)
}

// Sync flushes buffered appends and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

//stcps:holds mu
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return l.noteSyncErrLocked(fmt.Errorf("wal: sync: %w", err))
	}
	if l.opts.Fsync != FsyncOff {
		if err := l.f.Sync(); err != nil {
			return l.noteSyncErrLocked(fmt.Errorf("wal: sync: %w", err))
		}
		// Count only real fsyncs: under FsyncOff the counters would
		// otherwise report durability that never happened.
		l.syncs++
		l.lastSync = time.Now()
	}
	l.dirty = false
	return nil
}

// noteSyncErrLocked records a sync failure so it surfaces through Stats
// and Err even when the caller is the background syncer. Callers hold
// mu.
//
//stcps:holds mu
func (l *Log) noteSyncErrLocked(err error) error {
	l.syncFailures++
	if l.firstErr == nil {
		l.firstErr = err
	}
	return err
}

// Err returns the first fsync failure ever recorded (nil when the log
// has always synced cleanly). A later successful fsync does not clear
// it: the kernel may have dropped the dirty pages the failed sync
// covered.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstErr
}

// Seq returns the sequence number of the newest record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Complete reports whether the log still holds every record ever
// appended — i.e. compaction has never removed a segment. Replay over a
// complete log reproduces the full ingest history; over an incomplete
// one only the tail.
func (l *Log) Complete() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs) > 0 && l.segs[0].first == 1
}

// Replay streams every live record, in sequence order, to fn. It reads
// the segment files from disk, so it must run before appends start
// (recovery time); fn must not call back into the log.
//
//stcps:replay
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	if err := l.syncFlushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := append([]segMeta(nil), l.segs...)
	l.mu.Unlock()

	for _, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		fr := segmentReader(f)
		seq := seg.first - 1
		for seq < seg.last {
			payload, _, err := fr.Next()
			if err != nil {
				f.Close()
				return fmt.Errorf("wal: replay %s: %w", filepath.Base(seg.path), err)
			}
			var env envelope
			if err := json.Unmarshal(payload, &env); err != nil {
				f.Close()
				return fmt.Errorf("wal: replay %s: %w", filepath.Base(seg.path), err)
			}
			seq++
			rec := Record{
				Seq:         seq,
				Kind:        env.Kind,
				Source:      env.Source,
				Conf:        env.Conf,
				Now:         env.Now,
				Instance:    env.Instance,
				Observation: env.Observation,
			}
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// syncFlushLocked lands buffered bytes without requiring fsync (so
// Replay sees them through the file system).
//
//stcps:holds mu
func (l *Log) syncFlushLocked() error {
	if l.w == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Snapshot writes a snapshot covering every record appended so far:
// write is handed an io.Writer for the db.Snapshot NDJSON body, the file
// lands atomically (tmp + rename), older snapshot files are removed, and
// sealed segments fully covered by the snapshot are compacted away —
// unless they still carry ingest records at or after horizon, which a
// detection window may need for replay. Pass horizon math.MinInt64 to
// keep all ingest history, math.MaxInt64 to discard any covered segment.
func (l *Log) Snapshot(write func(io.Writer) error, horizon timemodel.Tick) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// The snapshot covers exactly the records appended so far; land them
	// first so the snapshot never claims more than the log holds.
	if err := l.syncLocked(); err != nil {
		return err
	}
	seq := l.seq

	tmp, err := os.CreateTemp(l.opts.Dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if l.opts.Fsync != FsyncOff {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	final := filepath.Join(l.opts.Dir, snapName(seq))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	// The rename must be durable BEFORE compaction unlinks the segments
	// it covers — persisted unlinks with an unpersisted rename would
	// lose both copies of the data.
	if err := l.syncDir(); err != nil {
		return err
	}
	prev := l.snapSeq
	l.snapSeq = seq
	l.snapshots++
	if prev > 0 && prev != seq {
		_ = os.Remove(filepath.Join(l.opts.Dir, snapName(prev)))
	}
	l.compactLocked(horizon)
	return l.syncDir()
}

// compactLocked removes sealed segments fully covered by the latest
// snapshot whose ingest records have all aged past horizon. Only a
// contiguous prefix is removed: record sequence numbers are positional,
// so a gap in the middle of the chain would make every later segment
// unreadable on the next open. A young segment therefore pins everything
// behind it — the price of not persisting sequence numbers per record.
//
//stcps:holds mu
func (l *Log) compactLocked(horizon timemodel.Tick) {
	cut := 0
	for i, seg := range l.segs {
		active := i == len(l.segs)-1
		covered := seg.last <= l.snapSeq
		disposable := !seg.hasIngest || seg.maxTick < horizon
		if active || !covered || !disposable {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			break
		}
		l.compacted++
		cut = i + 1
	}
	l.segs = append(l.segs[:0], l.segs[cut:]...)
}

// LatestSnapshot opens the newest snapshot file. It returns a nil reader
// (and seq 0) when no snapshot exists.
func (l *Log) LatestSnapshot() (io.ReadCloser, uint64, error) {
	l.mu.Lock()
	seq := l.snapSeq
	dir := l.opts.Dir
	l.mu.Unlock()
	if seq == 0 {
		return nil, 0, nil
	}
	f, err := os.Open(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, 0, fmt.Errorf("wal: snapshot: %w", err)
	}
	return f, seq, nil
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Segments:          len(l.segs),
		LastSeq:           l.seq,
		Appended:          l.appended,
		Syncs:             l.syncs,
		SyncFailures:      l.syncFailures,
		TornRecords:       l.torn,
		SnapshotSeq:       l.snapSeq,
		Snapshots:         l.snapshots,
		CompactedSegments: l.compacted,
	}
	for _, seg := range l.segs {
		s.Bytes += seg.bytes
	}
	if !l.lastSync.IsZero() {
		s.LastSyncUnixMs = l.lastSync.UnixMilli()
	}
	return s
}

// Close syncs and closes the log. Further appends return ErrClosed.
// Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	if l.lock != nil {
		_ = l.lock.Close() // releases the directory lock
	}
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	return err
}
