package engine

import (
	"fmt"
	"sync"
	"testing"

	"github.com/stcps/stcps/internal/condition"
	"github.com/stcps/stcps/internal/detect"
	"github.com/stcps/stcps/internal/event"
)

// TestShardedPartitioner checks the Partitioner seam against the
// in-process implementation: routing is deterministic and dense,
// Owners mirrors the actual detector placement, and Route agrees with
// where AddDetector put each event.
func TestShardedPartitioner(t *testing.T) {
	const shards, nEvents = 5, 23
	s := shardedFixture(t, shards, nEvents, nil)
	var p Partitioner = s

	owners := p.Owners()
	if len(owners) != shards {
		t.Fatalf("Owners() has %d members, want %d", len(owners), shards)
	}
	placed := 0
	for i, o := range owners {
		if o.Shard != i {
			t.Fatalf("Owners()[%d].Shard = %d, want dense index %d", i, o.Shard, i)
		}
		if o.Node != LocalNode {
			t.Fatalf("Owners()[%d].Node = %q, want %q", i, o.Node, LocalNode)
		}
		placed += o.Detectors
	}
	if placed != nEvents {
		t.Fatalf("membership accounts for %d detectors, want %d", placed, nEvents)
	}

	// Route is stable, in range, and consistent with placement: the
	// per-shard routed counts must reproduce the Owners() detector
	// counts, since AddDetector placed each event via the same hash.
	routed := make([]int, shards)
	for i := 0; i < nEvents; i++ {
		id := fmt.Sprintf("E%d", i)
		shard := p.Route(id)
		if shard < 0 || shard >= shards {
			t.Fatalf("Route(%q) = %d, out of [0,%d)", id, shard, shards)
		}
		if again := p.Route(id); again != shard {
			t.Fatalf("Route(%q) unstable: %d then %d", id, shard, again)
		}
		routed[shard]++
	}
	for i := range routed {
		if routed[i] != owners[i].Detectors {
			t.Fatalf("shard %d: Route places %d events there but Owners reports %d detectors",
				i, routed[i], owners[i].Detectors)
		}
	}
}

// TestOwnersConcurrentWithAddDetector pins the /v1/stats hazard under
// the race detector: Owners() must be readable while registration is
// still adding detectors, because the daemon's stats endpoint scrapes
// membership whenever a client asks. Run with -race.
func TestOwnersConcurrentWithAddDetector(t *testing.T) {
	const shards, nEvents = 4, 200
	s, err := NewSharded(Config{Observer: "OB"}, shards)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := 0
			for _, o := range s.Owners() {
				total += o.Detectors
			}
			if total < prev {
				t.Errorf("placement count went backwards: %d then %d", prev, total)
				return
			}
			prev = total
		}
	}()
	for i := 0; i < nEvents; i++ {
		if err := s.AddDetector(detect.Spec{
			EventID: fmt.Sprintf("E%d", i),
			Layer:   event.LayerSensor,
			Roles:   []detect.RoleSpec{{Name: "x", Source: fmt.Sprintf("S%d", i), Window: 4}},
			Cond:    condition.MustParse("x.v > 0"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	total := 0
	for _, o := range s.Owners() {
		total += o.Detectors
	}
	if total != nEvents {
		t.Fatalf("final placement count = %d, want %d", total, nEvents)
	}
}
