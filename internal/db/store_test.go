package db

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func inst(observer, eventID string, seq uint64, occ timemodel.Time, loc spatial.Location) event.Instance {
	return event.Instance{
		Layer:      event.LayerSensor,
		Observer:   observer,
		Event:      eventID,
		Seq:        seq,
		Gen:        occ.End() + 1,
		GenLoc:     spatial.AtPoint(0, 0),
		Occ:        occ,
		Loc:        loc,
		Confidence: 1,
	}
}

func TestLogAndGet(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	in := inst("MT1", "S.hot", 1, timemodel.At(10), spatial.AtPoint(1, 1))
	if err := s.Log(in); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(in.EntityID())
	if err != nil {
		t.Fatal(err)
	}
	if got.EntityID() != in.EntityID() {
		t.Errorf("Get = %q", got.EntityID())
	}
	if _, err := s.Get("E(x,y,9)"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing Get err = %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	// Duplicate log is idempotent.
	if err := s.Log(in); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("duplicate changed Len = %d", s.Len())
	}
	// Invalid instance rejected.
	bad := in
	bad.Confidence = 5
	if err := s.Log(bad); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestQueryTime(t *testing.T) {
	s, _ := New(0)
	// Insert out of occurrence order to exercise the ordered index.
	_ = s.Log(inst("M", "E", 1, timemodel.MustBetween(50, 60), spatial.AtPoint(0, 0)))
	_ = s.Log(inst("M", "E", 2, timemodel.At(10), spatial.AtPoint(0, 0)))
	_ = s.Log(inst("M", "E", 3, timemodel.MustBetween(90, 120), spatial.AtPoint(0, 0)))
	_ = s.Log(inst("M", "other", 4, timemodel.At(55), spatial.AtPoint(0, 0)))

	got := s.QueryTime("E", 0, 200)
	if len(got) != 3 {
		t.Fatalf("all = %d, want 3", len(got))
	}
	if got[0].Occ.Start() != 10 || got[1].Occ.Start() != 50 || got[2].Occ.Start() != 90 {
		t.Fatalf("order wrong: %v %v %v", got[0].Occ, got[1].Occ, got[2].Occ)
	}
	// Range intersecting only the interval [50,60].
	got = s.QueryTime("E", 55, 70)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("range query = %+v", got)
	}
	// Empty range.
	if got := s.QueryTime("E", 200, 100); got != nil {
		t.Fatal("inverted range should be empty")
	}
	if got := s.QueryTime("E", 61, 89); len(got) != 0 {
		t.Fatalf("gap query = %d", len(got))
	}
	// Empty event id scans everything.
	if got := s.QueryTime("", 0, 200); len(got) != 4 {
		t.Fatalf("scan-all = %d, want 4", len(got))
	}
}

func TestQueryTimeMatchesScan(t *testing.T) {
	s, _ := New(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		start := timemodel.Tick(rng.Intn(1000))
		length := timemodel.Tick(rng.Intn(50))
		_ = s.Log(inst("M", "E", uint64(i+1), timemodel.MustBetween(start, start+length),
			spatial.AtPoint(rng.Float64()*100, rng.Float64()*100)))
	}
	for trial := 0; trial < 30; trial++ {
		from := timemodel.Tick(rng.Intn(1000))
		to := from + timemodel.Tick(rng.Intn(200))
		a := s.QueryTime("E", from, to)
		b := s.ScanTime("E", from, to)
		if len(a) != len(b) {
			t.Fatalf("trial %d: index %d != scan %d", trial, len(a), len(b))
		}
		ids := func(list []event.Instance) []string {
			out := make([]string, len(list))
			for i, in := range list {
				out[i] = in.EntityID()
			}
			sort.Strings(out)
			return out
		}
		ai, bi := ids(a), ids(b)
		for i := range ai {
			if ai[i] != bi[i] {
				t.Fatalf("trial %d: results differ", trial)
			}
		}
	}
}

func TestQueryRegionMatchesScan(t *testing.T) {
	s, _ := New(8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		_ = s.Log(inst("M", "E", uint64(i+1), timemodel.At(timemodel.Tick(i)),
			spatial.AtPoint(rng.Float64()*100, rng.Float64()*100)))
	}
	for trial := 0; trial < 20; trial++ {
		x, y := rng.Float64()*80, rng.Float64()*80
		f, err := spatial.Rect(x, y, x+15, y+15)
		if err != nil {
			t.Fatal(err)
		}
		region := spatial.InField(f)
		a := s.QueryRegion(region)
		b := s.ScanRegion(region)
		if len(a) != len(b) {
			t.Fatalf("trial %d: index %d != scan %d", trial, len(a), len(b))
		}
	}
}

func TestLineage(t *testing.T) {
	s, _ := New(0)
	o := event.Observation{Mote: "MT1", Sensor: "SR", Seq: 1, Time: timemodel.At(5), Loc: spatial.AtPoint(0, 0)}
	s.LogObservation(o)

	sensor := inst("MT1", "S.e", 1, timemodel.At(5), spatial.AtPoint(0, 0))
	sensor.Inputs = []string{o.EntityID()}
	_ = s.Log(sensor)

	cp := inst("sink1", "CP.e", 1, timemodel.At(5), spatial.AtPoint(0, 0))
	cp.Layer = event.LayerCyberPhysical
	cp.Inputs = []string{sensor.EntityID()}
	_ = s.Log(cp)

	cyber := inst("CCU1", "E.e", 1, timemodel.At(5), spatial.AtPoint(0, 0))
	cyber.Layer = event.LayerCyber
	cyber.Inputs = []string{cp.EntityID()}
	_ = s.Log(cyber)

	chain, err := s.Lineage(cyber.EntityID())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{cyber.EntityID(), cp.EntityID(), sensor.EntityID(), o.EntityID()}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	if _, err := s.Lineage("E(none,none,0)"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lineage err = %v", err)
	}
	// Lineage of a logged observation resolves to itself.
	chain, err = s.Lineage(o.EntityID())
	if err != nil || len(chain) != 1 {
		t.Errorf("observation lineage = %v, %v", chain, err)
	}
}

func TestLineageCycleSafe(t *testing.T) {
	s, _ := New(0)
	a := inst("M", "E", 1, timemodel.At(1), spatial.AtPoint(0, 0))
	b := inst("M", "E", 2, timemodel.At(2), spatial.AtPoint(0, 0))
	a.Inputs = []string{b.EntityID()}
	b.Inputs = []string{a.EntityID()} // pathological cycle
	_ = s.Log(a)
	_ = s.Log(b)
	chain, err := s.Lineage(a.EntityID())
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("cycle chain = %v", chain)
	}
}

func TestEventIDsAndAll(t *testing.T) {
	s, _ := New(0)
	_ = s.Log(inst("M", "B", 1, timemodel.At(1), spatial.AtPoint(0, 0)))
	_ = s.Log(inst("M", "A", 1, timemodel.At(2), spatial.AtPoint(0, 0)))
	ids := s.EventIDs()
	if len(ids) != 2 || ids[0] != "A" || ids[1] != "B" {
		t.Errorf("EventIDs = %v", ids)
	}
	all := s.All()
	if len(all) != 2 || all[0].Event != "B" {
		t.Errorf("All = %v", all)
	}
}

func TestConcurrentLogAndQuery(t *testing.T) {
	s, _ := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in := inst(fmt.Sprintf("M%d", g), "E", uint64(i+1), timemodel.At(timemodel.Tick(i)), spatial.AtPoint(float64(i), float64(g)))
				if err := s.Log(in); err != nil {
					t.Errorf("log: %v", err)
					return
				}
				s.QueryTime("E", 0, timemodel.Tick(i))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}
