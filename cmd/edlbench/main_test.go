package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	tests := []struct {
		exp  string
		want string
	}{
		{"E1", "E1: EDL vs. network depth"},
		{"e2", "E2: EDL vs. sampling period"},
		{"E3", "E3: recall and EDL"},
		{"E8", "E8: baseline expressiveness"},
		{"E11", "E11: condition evaluation placement"},
	}
	for _, tt := range tests {
		t.Run(tt.exp, func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{"-exp", tt.exp, "-runs", "2"}, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), tt.want) {
				t.Errorf("output missing %q", tt.want)
			}
			// Tables must have data rows beyond the two header lines.
			if lines := strings.Count(out.String(), "\n"); lines < 4 {
				t.Errorf("table too short:\n%s", out.String())
			}
		})
	}
}

func TestRunJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-exp", "E3", "-runs", "2", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Schema string `json:"schema"`
		E3     []struct {
			Loss   float64 `json:"loss"`
			Recall float64 `json:"recall"`
		} `json:"e3"`
		Engine []struct {
			Shards      int     `json:"shards"`
			NsPerEntity float64 `json:"nsPerEntity"`
			Emitted     uint64  `json:"emitted"`
		} `json:"engineIngest"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Schema != "stcps-bench/1" {
		t.Errorf("schema = %q", art.Schema)
	}
	if len(art.E3) != 6 {
		t.Errorf("e3 rows = %d, want 6", len(art.E3))
	}
	if art.E3[0].Recall < art.E3[len(art.E3)-1].Recall {
		t.Errorf("recall should not improve with loss: %v", art.E3)
	}
	if len(art.Engine) == 0 {
		t.Fatal("no engine throughput rows")
	}
	for _, row := range art.Engine {
		if row.NsPerEntity <= 0 || row.Emitted == 0 {
			t.Errorf("degenerate engine row %+v", row)
		}
	}
}

// TestE9QuerySpeedup runs the combined retrieval experiment at reduced
// scale and checks the indexed path wins and both modes agree (hit
// mismatch fails inside e9).
func TestE9QuerySpeedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-exp", "E9", "-queryInstances", "20000", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E9: combined region×time retrieval") {
		t.Fatalf("output missing E9 table:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		E9 []struct {
			Mode       string  `json:"mode"`
			NsPerQuery float64 `json:"nsPerQuery"`
			Hits       int     `json:"hits"`
			Speedup    float64 `json:"speedup"`
		} `json:"e9"`
		Retention *struct {
			Logged  int    `json:"logged"`
			Live    int    `json:"live"`
			Evicted uint64 `json:"evicted"`
		} `json:"retention"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.E9) != 2 || art.E9[0].Mode != "queryST" || art.E9[1].Mode != "scan" {
		t.Fatalf("e9 rows = %+v", art.E9)
	}
	if art.E9[0].Hits != art.E9[1].Hits {
		t.Errorf("hit mismatch: %+v", art.E9)
	}
	if art.E9[0].Speedup <= 1 {
		t.Errorf("indexed path slower than scan: %+v", art.E9)
	}
	if art.Retention == nil || art.Retention.Live != 10000 || art.Retention.Evicted != 30000 {
		t.Errorf("retention row = %+v", art.Retention)
	}
}

// TestE15Contention runs the store-contention experiment at reduced
// scale. The production gates (p99 speedup, ingest ratio) are
// meaningless with this few readers for this short a window, so the
// test checks structure plus the hard invariants e15 itself enforces
// inline: bounded-staleness/order witnesses on every page, zero
// index-lock acquisitions per replayed page, the differential check of
// the lock-free pages against the monolithic reference, and the
// hot-event churn bound — any violation fails run() with an error.
func TestE15Contention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-exp", "E15", "-contendReaders", "8", "-contendMillis", "120", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E15: store contention") {
		t.Fatalf("output missing E15 table:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		E15 *struct {
			Contend []struct {
				Mode         string  `json:"mode"`
				Readers      int     `json:"readers"`
				PageQueries  int     `json:"pageQueries"`
				ProbeQueries int     `json:"probeQueries"`
				PageP99Us    float64 `json:"pageP99Us"`
				IngestPerSec float64 `json:"ingestPerSec"`
			} `json:"contend"`
			IngestSoloPerSec  float64 `json:"ingestSoloPerSec"`
			AuditPages        uint64  `json:"auditPages"`
			AuditMaterialized uint64  `json:"auditMaterialized"`
			AuditLocksPerPage float64 `json:"auditLocksPerPage"`
			ChurnNsPerInst    float64 `json:"churnNsPerInst"`
		} `json:"e15"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.E15 == nil {
		t.Fatal("artifact missing e15 section")
	}
	s := art.E15
	if len(s.Contend) != 2 || s.Contend[0].Mode != "locked" || s.Contend[1].Mode != "chunked" {
		t.Fatalf("contend rows = %+v", s.Contend)
	}
	for _, r := range s.Contend {
		if r.Readers != 8 || r.PageQueries == 0 || r.ProbeQueries == 0 || r.PageP99Us <= 0 || r.IngestPerSec <= 0 {
			t.Errorf("degenerate contend row %+v", r)
		}
	}
	if s.IngestSoloPerSec <= 0 {
		t.Errorf("solo ingest = %.0f, want > 0", s.IngestSoloPerSec)
	}
	if s.AuditPages == 0 || s.AuditMaterialized == 0 {
		t.Errorf("replay audit measured nothing: pages=%d materialized=%d", s.AuditPages, s.AuditMaterialized)
	}
	if s.AuditLocksPerPage != 0 {
		t.Errorf("index-locks/page = %.2f, want 0", s.AuditLocksPerPage)
	}
	if s.ChurnNsPerInst <= 0 {
		t.Errorf("churn ns/inst = %.0f, want > 0", s.ChurnNsPerInst)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestE1MonotoneInDepth(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E1", "-runs", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	// The measured mean column must be non-decreasing with depth.
	var prev float64 = -1
	for _, line := range strings.Split(out.String(), "\n") {
		fields := strings.Split(line, "\t")
		if len(fields) != 6 || fields[0] == "depth" {
			continue
		}
		mean, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if mean < prev {
			t.Fatalf("EDL decreased with depth: %v after %v", mean, prev)
		}
		prev = mean
	}
	if prev < 0 {
		t.Fatal("no data rows parsed")
	}
}

// TestE10JoinSpeedup runs the planned-vs-naive join experiment at
// reduced scale: the planner must emit identically, win clearly, and
// keep the compiled-binding eval loop allocation-free.
func TestE10JoinSpeedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-exp", "E10", "-joinEntities", "450", "-joinWindow", "64", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E10: planned vs naive window join") {
		t.Fatalf("output missing E10 table:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		E10 []struct {
			Mode        string  `json:"mode"`
			NsPerEntity float64 `json:"nsPerEntity"`
			Emitted     uint64  `json:"emitted"`
			Speedup     float64 `json:"speedup"`
			EvalAllocs  float64 `json:"evalAllocsPerOp"`
		} `json:"e10"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.E10) != 2 || art.E10[0].Mode != "planned" || art.E10[1].Mode != "naive" {
		t.Fatalf("e10 rows = %+v", art.E10)
	}
	if art.E10[0].Emitted != art.E10[1].Emitted {
		t.Errorf("emission mismatch: %+v", art.E10)
	}
	if art.E10[0].Speedup < 10 {
		t.Errorf("planned join speedup %.1fx, want >= 10x", art.E10[0].Speedup)
	}
	if art.E10[0].EvalAllocs != 0 {
		t.Errorf("compiled eval allocates %.1f times per op, want 0", art.E10[0].EvalAllocs)
	}
}
