// Package phys simulates the physical world of the CPS architecture
// (Tan, Vuran, Goddard, ICDCSW 2009, Fig. 1 left side): physical objects
// with trajectories, scalar phenomena (temperature fields), growing field
// phenomena (fires), and switchable object attributes.
//
// The paper's cyber side only ever sees the physical world through sampled
// observations {t°, l°, V}; this package produces exactly those samples
// while also recording ground-truth physical events (Eq. 5.1) so that
// detection accuracy and event detection latency can be scored — something
// a real deployment cannot do. This is the substitution documented in
// DESIGN.md §2.
package phys

import (
	"math/rand"
	"sort"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Trajectory yields an object's position as a function of virtual time.
// Implementations must be deterministic: the same tick always yields the
// same position.
type Trajectory interface {
	// PositionAt returns the position at tick t.
	PositionAt(t timemodel.Tick) spatial.Point
}

// Stationary is a trajectory that never moves.
type Stationary struct {
	// P is the fixed position.
	P spatial.Point
}

// PositionAt implements Trajectory.
func (s Stationary) PositionAt(timemodel.Tick) spatial.Point { return s.P }

// Waypoint is a timed position on a Waypoints trajectory.
type Waypoint struct {
	// T is the arrival tick.
	T timemodel.Tick
	// P is the position at tick T.
	P spatial.Point
}

// Waypoints is a piecewise-linear trajectory through timed waypoints.
// Before the first waypoint the object sits at the first position; after
// the last it sits at the last.
type Waypoints struct {
	points []Waypoint
}

// NewWaypoints builds a waypoint trajectory. Waypoints are sorted by time;
// at least one waypoint is required (enforced by returning a Stationary
// origin trajectory for empty input).
func NewWaypoints(points []Waypoint) Trajectory {
	if len(points) == 0 {
		return Stationary{}
	}
	own := make([]Waypoint, len(points))
	copy(own, points)
	sort.SliceStable(own, func(i, j int) bool { return own[i].T < own[j].T })
	return Waypoints{points: own}
}

// PositionAt implements Trajectory by linear interpolation.
func (w Waypoints) PositionAt(t timemodel.Tick) spatial.Point {
	pts := w.points
	if t <= pts[0].T {
		return pts[0].P
	}
	last := pts[len(pts)-1]
	if t >= last.T {
		return last.P
	}
	// Binary search for the first waypoint with T > t.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t })
	a, b := pts[i-1], pts[i]
	if b.T == a.T {
		return b.P
	}
	frac := float64(t-a.T) / float64(b.T-a.T)
	return spatial.Pt(
		a.P.X+(b.P.X-a.P.X)*frac,
		a.P.Y+(b.P.Y-a.P.Y)*frac,
	)
}

// RandomWalk generates a deterministic waypoint trajectory by a bounded
// random walk: n steps of length step, every dt ticks, starting at start,
// reflected at the bounding rectangle [minX,maxX]×[minY,maxY]. The walk is
// drawn entirely from rng at construction, so playback is deterministic.
func RandomWalk(rng *rand.Rand, start spatial.Point, step float64, n int, dt timemodel.Tick, minX, minY, maxX, maxY float64) Trajectory {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo + (lo - v) // reflect
		}
		if v > hi {
			return hi - (v - hi)
		}
		return v
	}
	pts := make([]Waypoint, 0, n+1)
	cur := start
	pts = append(pts, Waypoint{T: 0, P: cur})
	for i := 1; i <= n; i++ {
		dx := (rng.Float64()*2 - 1) * step
		dy := (rng.Float64()*2 - 1) * step
		cur = spatial.Pt(
			clamp(cur.X+dx, minX, maxX),
			clamp(cur.Y+dy, minY, maxY),
		)
		pts = append(pts, Waypoint{T: timemodel.Tick(i) * dt, P: cur})
	}
	return NewWaypoints(pts)
}
