package condition

import (
	"math/rand"
	"testing"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

func kinds(a Analysis) []ClauseKind {
	out := make([]ClauseKind, len(a.Clauses))
	for i, c := range a.Clauses {
		out[i] = c.Kind
	}
	return out
}

func TestAnalyzeClassification(t *testing.T) {
	cases := []struct {
		cond string
		want []ClauseKind
	}{
		{"x.a > 5", []ClauseKind{KindFilter}},
		{"true", []ClauseKind{KindFilter}},
		{"x.time before y.time", []ClauseKind{KindTemporal}},
		{"x.start + 3 after y.end - 2", []ClauseKind{KindTemporal}},
		{"dist(x.loc, y.loc) < 4", []ClauseKind{KindSpatial}},
		{"7 >= dist(x.loc, y.loc)", []ClauseKind{KindSpatial}},
		{"x.a > y.b", []ClauseKind{KindResidual}},
		{"dist(x.loc, y.loc) > 4", []ClauseKind{KindResidual}},
		{"x.time before x.time + 5", []ClauseKind{KindFilter}}, // one role
		{"x.a > 5 and x.time before y.time and dist(x.loc, y.loc) < 4 and x.a > y.b",
			[]ClauseKind{KindFilter, KindTemporal, KindSpatial, KindResidual}},
		{"x.a > 1 or y.b > 1", []ClauseKind{KindResidual}},
		{"not (x.time before y.time)", []ClauseKind{KindResidual}},
		// AND below an OR stays one residual clause.
		{"(x.a > 1 and y.b > 1) or x.a < 0", []ClauseKind{KindResidual}},
	}
	for _, tc := range cases {
		a := Analyze(MustParse(tc.cond))
		got := kinds(a)
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d clauses %v, want %v", tc.cond, len(got), got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: clause %d is %v, want %v", tc.cond, i, got[i], tc.want[i])
			}
		}
	}
}

func TestAnalyzeIndexable(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"x.time before y.time", true},
		{"x.a > 1 and y.b > 1", true},
		{"x.a > y.b and y.b > x.a", true}, // two residuals still split
		{"x.a > 1 or y.b > 1", false},
		{"not (x.a > y.b)", false},
		{"x.a > y.b", false},
	}
	for _, tc := range cases {
		if got := Analyze(MustParse(tc.cond)).Indexable(); got != tc.want {
			t.Errorf("Indexable(%s) = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

// TestAnalyzeConjunctionEquivalence checks that the decomposition is
// exact: the conjunction of the clauses evaluates like the original
// condition.
func TestAnalyzeConjunctionEquivalence(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed + 7000))
		g := &exprGen{rng: rng}
		e := g.expr(3)
		a := Analyze(e)
		for trial := 0; trial < 6; trial++ {
			b := randomBinding(rng)
			want, wantErr := e.Eval(b)
			got := true
			anyErr := false
			for _, cl := range a.Clauses {
				v, err := cl.Expr.Eval(b)
				if err != nil {
					anyErr = true
					got = false
					break
				}
				if !v {
					got = false
					break
				}
			}
			// Errors gate emission like false, so the decomposition only
			// has to agree on "satisfied without error".
			wantSat := wantErr == nil && want
			gotSat := !anyErr && got
			if wantSat != gotSat {
				t.Fatalf("seed %d: %s\noriginal satisfied=%v (err=%v), clauses satisfied=%v",
					seed, e, want, wantErr, gotSat)
			}
		}
	}
}

// TestStartBoundsSound property-tests the planner's core guarantee:
// whenever a temporal clause holds for a candidate, the candidate's
// occurrence start lies within StartBounds derived from the other role.
func TestStartBoundsSound(t *testing.T) {
	ops := []timemodel.Operator{
		timemodel.OpBefore, timemodel.OpAfter, timemodel.OpDuring,
		timemodel.OpBegin, timemodel.OpEnd, timemodel.OpMeet,
		timemodel.OpOverlap, timemodel.OpEqualT,
	}
	parts := []TimePart{WholeTime, StartTime, EndTime}
	rng := rand.New(rand.NewSource(42))
	randTime := func() timemodel.Time {
		s := timemodel.Tick(rng.Intn(60))
		return timemodel.MustBetween(s, s+timemodel.Tick(rng.Intn(10)))
	}
	mkEnt := func(tm timemodel.Time) event.Entity {
		return event.Observation{Mote: "M", Sensor: "S", Time: tm, Loc: spatial.AtPoint(0, 0)}
	}
	for trial := 0; trial < 20000; trial++ {
		link := &TemporalLink{
			LRole: "x", RRole: "y",
			LPart: parts[rng.Intn(3)], RPart: parts[rng.Intn(3)],
			LShift: timemodel.Tick(rng.Intn(11) - 5), RShift: timemodel.Tick(rng.Intn(11) - 5),
			Op: ops[rng.Intn(len(ops))],
		}
		// Reconstruct the clause the link came from.
		mkSide := func(role string, part TimePart, shift timemodel.Tick) Term {
			ref := TimeRef{Role: role, Part: part}
			if shift == 0 {
				return ref
			}
			if shift < 0 {
				return TimeShift{T: ref, D: NumLit{V: float64(-shift)}, Neg: true}
			}
			return TimeShift{T: ref, D: NumLit{V: float64(shift)}}
		}
		clause := CmpTime{
			L:  mkSide(link.LRole, link.LPart, link.LShift),
			R:  mkSide(link.RRole, link.RPart, link.RShift),
			Op: link.Op,
		}
		xt, yt := randTime(), randTime()
		b := Binding{"x": mkEnt(xt), "y": mkEnt(yt)}
		sat, err := clause.Eval(b)
		if err != nil {
			t.Fatal(err)
		}
		if !sat {
			continue
		}
		// x as probe given y, and y as probe given x.
		bx := link.StartBounds("x", yt)
		if (bx.HasLo && xt.Start() < bx.Lo) || (bx.HasHi && xt.Start() > bx.Hi) {
			t.Fatalf("clause %s holds for x=%v y=%v but x.start outside bounds %+v",
				clause, xt, yt, bx)
		}
		by := link.StartBounds("y", xt)
		if (by.HasLo && yt.Start() < by.Lo) || (by.HasHi && yt.Start() > by.Hi) {
			t.Fatalf("clause %s holds for x=%v y=%v but y.start outside bounds %+v",
				clause, xt, yt, by)
		}
	}
}
