package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/stcps/stcps/internal/event"
	"github.com/stcps/stcps/internal/frame"
	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/wireclient"
)

// wireRow is one E14 measurement: the same observation workload pushed
// through one of the ingest front-ends, down to decoded entities
// offered to a sink.
type wireRow struct {
	// Mode is jsonl-two-pass (the pre-optimization probe-then-decode
	// stdin path), jsonl (the single-pass stdin path), binary-decode
	// (framed wire batches decoded at the same in-memory boundary as
	// the JSONL rows: bytes in, offered entities out, CRC included) or
	// binary-tcp (the full pipeline over loopback TCP via wireclient —
	// client-side encode, kernel, server decode, acks, credit window).
	Mode      string  `json:"mode"`
	Records   int     `json:"records"`
	Bytes     int     `json:"bytes"`
	NsPerRec  float64 `json:"nsPerRec"`
	RecPerSec float64 `json:"recPerSec"`
	MBPerSec  float64 `json:"mbPerSec"`
	// Speedup is rec/s relative to the baseline: for jsonl the two-pass
	// decoder, for the binary modes the single-pass JSONL decoder.
	Speedup float64 `json:"speedup,omitempty"`
}

// e14Obs is the E14 workload record: a 10-attribute IMU-style
// observation, the realistic dense-sensor shape the wire batch format
// is built for.
func e14Obs(i int) event.Observation {
	return event.Observation{
		Mote: "MT1", Sensor: "SRimu", Seq: uint64(i + 1),
		Time: timemodel.At(timemodel.Tick(i)),
		Loc:  spatial.AtPoint(float64(i%7), float64(i%5)),
		Attrs: event.Attrs{
			"ax": 0.1 * float64(i%100), "ay": -0.2, "az": 9.8,
			"gx": 0.01, "gy": 0.02, "gz": 0.03,
			"mx": 41, "my": -12, "mz": 7, "temp": 21.5,
		},
	}
}

// e14 compares observation ingest throughput across the daemon's
// front-ends: the old probe-then-decode JSONL path, the single-pass
// JSONL path, and the binary wire protocol over a real loopback TCP
// connection (framing, CRC, batching, credit window and acks included).
// Every decoded observation is touched (one attribute read) so no path
// can skip materializing its payload.
func e14(out io.Writer, records int) ([]wireRow, error) {
	fmt.Fprintln(out, "=== E14: wire ingest, JSONL vs binary TCP ===")
	fmt.Fprintln(out, "mode\trecords\tns/rec\trec/s\tMB/s\tspeedup")

	var jsonl bytes.Buffer
	for i := 0; i < records; i++ {
		line, err := event.EncodeObservation(e14Obs(i))
		if err != nil {
			return nil, err
		}
		jsonl.Write(line)
		jsonl.WriteByte('\n')
	}
	feed := jsonl.Bytes()

	var sink float64
	consume := func(az float64, ok bool) error {
		if !ok {
			return fmt.Errorf("E14: decoded observation lost its az attribute")
		}
		sink += az
		return nil
	}

	// Two-pass: probe the discriminating field, then decode again — the
	// stdin path before the single-pass optimization.
	decoded := 0
	start := time.Now()
	sc := bufio.NewScanner(bytes.NewReader(feed))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Event  string `json:"event"`
			Sensor string `json:"sensor"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, err
		}
		if probe.Sensor == "" {
			return nil, fmt.Errorf("E14: probe missed the sensor field")
		}
		obs, err := event.DecodeObservation(line)
		if err != nil {
			return nil, err
		}
		az, ok := obs.Attrs["az"]
		if err := consume(az, ok); err != nil {
			return nil, err
		}
		decoded++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	twoPass := time.Since(start)
	if decoded != records {
		return nil, fmt.Errorf("E14: two-pass decoded %d of %d", decoded, records)
	}

	// Single-pass: one DecodeEntityJSON per line, dispatching on the
	// discriminating field without a second parse.
	decoded = 0
	start = time.Now()
	sc = bufio.NewScanner(bytes.NewReader(feed))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		_, obs, kind, err := event.DecodeEntityJSON(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("E14: single-pass decode: %w", err)
		}
		if kind != event.KindObservation {
			return nil, fmt.Errorf("E14: single-pass decode: kind=%d", kind)
		}
		az, ok := obs.Attrs["az"]
		if err := consume(az, ok); err != nil {
			return nil, err
		}
		decoded++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	singlePass := time.Since(start)
	if decoded != records {
		return nil, fmt.Errorf("E14: single-pass decoded %d of %d", decoded, records)
	}

	// Binary decode: the wire batches pre-framed in memory, then read
	// through the frame reader (CRC verification included) and decoded
	// zero-copy to offered entities — the same bytes-to-entities
	// boundary the JSONL rows measure, and the per-record cost the
	// daemon's ingest path pays.
	var stream []byte
	wireBytes := 0
	{
		var bw frame.BatchWriter
		var payload []byte
		for i := 0; i < records; i += frame.DefaultBatchRecords {
			end := i + frame.DefaultBatchRecords
			if end > records {
				end = records
			}
			for j := i; j < end; j++ {
				o := e14Obs(j)
				bw.AddObservation(&o)
			}
			var n int
			payload, n = bw.Take(payload[:0])
			if n != end-i {
				return nil, fmt.Errorf("E14: framed %d of %d", n, end-i)
			}
			wireBytes += len(payload)
			stream = frame.AppendFrame(stream, payload)
		}
	}
	decoded = 0
	it := event.NewInterner()
	var batch frame.Batch
	start = time.Now()
	fr := frame.NewReader(bytes.NewReader(stream), 0)
	for {
		payload, _, err := fr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("E14: frame read: %w", err)
		}
		// Zero-copy: the batch owns the frame buffer, as in the server.
		fr.Detach()
		if err := frame.DecodeBatch(payload, false, it, &batch); err != nil {
			return nil, fmt.Errorf("E14: batch decode: %w", err)
		}
		for i := 0; i < batch.Len(); i++ {
			az, ok := batch.Entity(i).Attr("az")
			if err := consume(az, ok); err != nil {
				return nil, err
			}
			decoded++
		}
	}
	binaryDecode := time.Since(start)
	if decoded != records {
		return nil, fmt.Errorf("E14: binary-decode decoded %d of %d", decoded, records)
	}

	// Binary TCP: the full wire pipeline over loopback — client-side
	// encode, framing, the kernel's TCP stack, server-side zero-copy
	// batch decode, the offer, acks and the credit window.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	offered := 0
	statsCh := make(chan frame.ServeStats, 1)
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			statsCh <- frame.ServeStats{}
			return
		}
		defer conn.Close()
		st, err := frame.ServeConn(conn, frame.ServerConfig{
			Offer: func(b *frame.Batch) error {
				for i := 0; i < b.Len(); i++ {
					az, ok := b.Entity(i).Attr("az")
					if err := consume(az, ok); err != nil {
						return err
					}
					offered++
				}
				return nil
			},
		})
		errCh <- err
		statsCh <- st
	}()
	c, err := wireclient.Dial(ln.Addr().String(), wireclient.Options{})
	if err != nil {
		return nil, err
	}
	// Pre-build the workload: the JSONL baselines decode a pre-encoded
	// feed, so the wire path's timed region must not pay for
	// constructing the observations either — only for encoding,
	// framing, transport, decode and offer.
	obs := make([]event.Observation, records)
	for i := range obs {
		obs[i] = e14Obs(i)
	}
	start = time.Now()
	for i := range obs {
		if err := c.SendObservation(&obs[i]); err != nil {
			return nil, fmt.Errorf("E14: wire send %d: %w", i, err)
		}
	}
	if err := c.Close(); err != nil {
		return nil, fmt.Errorf("E14: wire close: %w", err)
	}
	binary := time.Since(start)
	if err := <-errCh; err != nil {
		return nil, fmt.Errorf("E14: wire serve: %w", err)
	}
	st := <-statsCh
	if offered != records || st.Records != uint64(records) {
		return nil, fmt.Errorf("E14: wire offered %d of %d (stats %+v)", offered, records, st)
	}
	_ = sink

	row := func(mode string, nbytes int, elapsed time.Duration, baseline time.Duration) wireRow {
		secs := elapsed.Seconds()
		r := wireRow{
			Mode:      mode,
			Records:   records,
			Bytes:     nbytes,
			NsPerRec:  float64(elapsed.Nanoseconds()) / float64(records),
			RecPerSec: float64(records) / secs,
			MBPerSec:  float64(nbytes) / (1 << 20) / secs,
		}
		if baseline > 0 {
			r.Speedup = baseline.Seconds() / secs
		}
		return r
	}
	rows := []wireRow{
		row("jsonl-two-pass", len(feed), twoPass, 0),
		row("jsonl", len(feed), singlePass, twoPass),
		row("binary-decode", wireBytes, binaryDecode, singlePass),
		row("binary-tcp", int(st.Bytes), binary, singlePass),
	}
	for _, r := range rows {
		if r.RecPerSec <= 0 {
			return nil, fmt.Errorf("E14: mode %s reports %.0f obs/s", r.Mode, r.RecPerSec)
		}
		fmt.Fprintf(out, "%s\t%d\t%.0f\t%.0f\t%.1f\t", r.Mode, r.Records, r.NsPerRec, r.RecPerSec, r.MBPerSec)
		if r.Speedup > 0 {
			fmt.Fprintf(out, "%.1fx", r.Speedup)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
	return rows, nil
}
