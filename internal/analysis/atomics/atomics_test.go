package atomics

import (
	"testing"

	"github.com/stcps/stcps/internal/analysis/analysistest"
)

func TestAtomics(t *testing.T) {
	analysistest.Run(t, "testdata/atom", Analyzer)
}
