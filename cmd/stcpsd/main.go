// Command stcpsd is the streaming detection daemon: a standalone
// stcps.Engine fed from stdin — the paper's observer logic (Eqs.
// 5.3–5.5) serving a live entity feed with no simulator attached.
//
// Input is JSONL, one entity per line: event instances (objects with an
// "event" field, the wire form of stcps.Instance) are ingested under
// their event id carrying their confidence; raw observations (objects
// with a "sensor" field) are ingested under their sensor id with
// confidence 1. Emitted instances are written to stdout as JSONL; a
// summary goes to stderr at EOF, after open interval detections are
// flushed at the latest ingested tick.
//
// Detected events are declared in a JSON file:
//
//	[{"id": "E.hot", "layer": "cyber",
//	  "roles": [{"name": "x", "source": "S.temp", "window": 4, "maxAge": 100}],
//	  "when": "x.temp > 30", "confidence": "noisy-or"}]
//
// With -http the daemon additionally keeps an in-process database
// server (the paper's Section-3 logging service) and serves the
// spatio-temporal query API from it, concurrently with ingest:
// GET /query (event, region, time window, pagination),
// GET /lineage/{entity}, GET /stats and GET /healthz. The
// -db-max-instances / -db-max-age flags bound the store's memory.
//
// Usage:
//
//	stcpsd -events events.json < entities.jsonl > instances.jsonl
//	stcpsd -events events.json -workers 8    # sharded engine, 8 shards
//	stcpsd -events events.json -http :8080 -db-max-instances 1000000
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"github.com/stcps/stcps"
	"github.com/stcps/stcps/internal/event"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "stcpsd:", err)
		os.Exit(1)
	}
}

// httpReady, when non-nil, receives the query API's bound address once
// the listener is up — the hook integration tests use to reach a
// daemon serving on ":0".
var httpReady func(addr string)

// roleJSON mirrors stcps.Role in the events file.
type roleJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Window int    `json:"window"`
	MaxAge int64  `json:"maxAge"`
}

// eventJSON mirrors stcps.EventSpec plus its layer in the events file.
type eventJSON struct {
	ID             string     `json:"id"`
	Layer          string     `json:"layer"`
	Roles          []roleJSON `json:"roles"`
	When           string     `json:"when"`
	Interval       bool       `json:"interval"`
	Confidence     string     `json:"confidence"`
	BaseConfidence float64    `json:"baseConfidence"`
	EstimateTime   string     `json:"estimateTime"`
	EstimateLoc    string     `json:"estimateLoc"`
}

// parseLayer maps the events-file layer name to the instance layer;
// empty defaults to cyber (the top of the hierarchy, where a standalone
// consumer of instance feeds typically sits).
func parseLayer(s string) (stcps.Layer, error) {
	switch s {
	case "sensor":
		return stcps.LayerSensor, nil
	case "cyber-physical":
		return stcps.LayerCyberPhysical, nil
	case "", "cyber":
		return stcps.LayerCyber, nil
	default:
		return 0, fmt.Errorf("unknown layer %q (want sensor, cyber-physical or cyber)", s)
	}
}

func loadEvents(path string) ([]eventJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var evs []eventJSON
	if err := json.Unmarshal(data, &evs); err != nil {
		return nil, fmt.Errorf("events file %s: %w", path, err)
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("events file %s declares no events", path)
	}
	return evs, nil
}

func run(args []string, in io.Reader, out, errw io.Writer) error {
	fs := flag.NewFlagSet("stcpsd", flag.ContinueOnError)
	fs.SetOutput(errw)
	eventsPath := fs.String("events", "", "JSON file declaring the detected events (required)")
	observer := fs.String("observer", "stcpsd", "observer id stamped on emitted instances")
	workers := fs.Int("workers", 1, "worker shards (>1 selects the concurrent sharded engine)")
	x := fs.Float64("x", 0, "observer location x")
	y := fs.Float64("y", 0, "observer location y")
	httpAddr := fs.String("http", "", "serve the spatio-temporal query API on this address (e.g. :8080); enables the in-process store")
	dbMaxInstances := fs.Int("db-max-instances", 0, "retention: max live instances in the store (0 = unlimited)")
	dbMaxAge := fs.Int64("db-max-age", 0, "retention: evict instances older than this many ticks behind the newest (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *eventsPath == "" {
		return fmt.Errorf("missing -events file")
	}
	evs, err := loadEvents(*eventsPath)
	if err != nil {
		return err
	}

	// Serialize instance output: in sharded mode OnInstance runs on
	// worker goroutines. The counters are atomic so the /stats endpoint
	// can read them while the feed runs.
	w := bufio.NewWriter(out)
	var mu sync.Mutex
	var ingested, skipped, emitted atomic.Uint64
	var writeErr error
	eng, err := stcps.NewEngine(stcps.EngineConfig{
		Observer:  *observer,
		Loc:       stcps.AtPoint(*x, *y),
		Workers:   *workers,
		WithStore: *httpAddr != "",
		DBRetention: stcps.Retention{
			MaxInstances: *dbMaxInstances,
			MaxAge:       stcps.Tick(*dbMaxAge),
		},
		OnInstance: func(inst stcps.Instance) {
			data, err := event.EncodeInstance(inst)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if writeErr == nil {
					writeErr = err
				}
				return
			}
			data = append(data, '\n')
			if _, err := w.Write(data); err != nil {
				if writeErr == nil {
					writeErr = err
				}
				return
			}
			emitted.Add(1)
		},
	})
	if err != nil {
		return err
	}
	for _, ev := range evs {
		layer, err := parseLayer(ev.Layer)
		if err != nil {
			return fmt.Errorf("event %q: %w", ev.ID, err)
		}
		spec := stcps.EventSpec{
			ID:             ev.ID,
			When:           ev.When,
			Interval:       ev.Interval,
			Confidence:     ev.Confidence,
			BaseConfidence: ev.BaseConfidence,
			EstimateTime:   ev.EstimateTime,
			EstimateLoc:    ev.EstimateLoc,
		}
		for _, r := range ev.Roles {
			spec.Roles = append(spec.Roles, stcps.Role{
				Name: r.Name, Source: r.Source,
				Window: r.Window, MaxAge: stcps.Tick(r.MaxAge),
			})
		}
		if err := eng.Detect(layer, spec); err != nil {
			return err
		}
	}
	for _, p := range eng.PlanDescriptions() {
		fmt.Fprintf(errw, "stcpsd: plan %s\n", p)
	}
	if err := eng.Start(); err != nil {
		return err
	}

	// Serve the query API from the live engine while the feed runs.
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("query API: %w", err)
		}
		a := &api{
			eng:      eng,
			observer: *observer,
			events:   len(evs),
			workers:  *workers,
			ingested: &ingested,
			skipped:  &skipped,
			emitted:  &emitted,
		}
		srv := &http.Server{Handler: a.handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(errw, "stcpsd: query API on http://%s\n", ln.Addr())
		if httpReady != nil {
			httpReady(ln.Addr().String())
		}
	}

	var (
		maxTick stcps.Tick
		feedErr error
	)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
scan:
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Event  string `json:"event"`
			Sensor string `json:"sensor"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			skipped.Add(1)
			fmt.Fprintf(errw, "stcpsd: skipping malformed line: %v\n", err)
			continue
		}
		switch {
		case probe.Event != "":
			inst, err := event.DecodeInstance(line)
			if err != nil {
				skipped.Add(1)
				fmt.Fprintf(errw, "stcpsd: skipping bad instance: %v\n", err)
				continue
			}
			if inst.Gen > maxTick {
				maxTick = inst.Gen
			}
			if _, err := eng.Feed(inst); err != nil {
				feedErr = err
				break scan
			}
		case probe.Sensor != "":
			obs, err := event.DecodeObservation(line)
			if err != nil {
				skipped.Add(1)
				fmt.Fprintf(errw, "stcpsd: skipping bad observation: %v\n", err)
				continue
			}
			if obs.Time.End() > maxTick {
				maxTick = obs.Time.End()
			}
			if _, err := eng.Observe(obs); err != nil {
				feedErr = err
				break scan
			}
		default:
			skipped.Add(1)
			fmt.Fprintln(errw, "stcpsd: skipping line with neither event nor sensor")
			continue
		}
		ingested.Add(1)
	}
	if feedErr == nil {
		feedErr = sc.Err()
	}

	// Always tear down: stop the worker shards, flush open intervals,
	// and land whatever output is buffered — even on a mid-stream
	// error, partial results reach stdout.
	eng.Close(maxTick)
	mu.Lock()
	defer mu.Unlock()
	flushErr := w.Flush()
	fmt.Fprintf(errw, "stcpsd: ingested=%d skipped=%d emitted=%d events=%d workers=%d\n",
		ingested.Load(), skipped.Load(), emitted.Load(), len(evs), *workers)
	switch {
	case feedErr != nil:
		return feedErr
	case writeErr != nil:
		return writeErr
	default:
		return flushErr
	}
}
