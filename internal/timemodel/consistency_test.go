package timemodel

import (
	"testing"
	"testing/quick"
)

// TestRelationOperatorCorrespondence verifies that the classification
// returned by Relate and the predicates of the paper's operators agree:
// each relation implies the operators that must hold for it.
func TestRelationOperatorCorrespondence(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := normTime(Tick(a1), Tick(a2))
		b := normTime(Tick(b1), Tick(b2))
		switch Relate(a, b) {
		case RelBefore:
			return OpBefore.Apply(a, b) && !OpOverlap.Apply(a, b)
		case RelAfter:
			return OpAfter.Apply(a, b) && !OpOverlap.Apply(a, b)
		case RelEquals:
			return OpEqualT.Apply(a, b) && OpDuring.Apply(a, b) &&
				OpBegin.Apply(a, b) && OpEnd.Apply(a, b)
		case RelStarts:
			return OpBegin.Apply(a, b) && OpDuring.Apply(a, b) && OpOverlap.Apply(a, b)
		case RelStartedBy:
			return OpBegin.Apply(a, b) && OpDuring.Apply(b, a) && OpOverlap.Apply(a, b)
		case RelFinishes:
			return OpEnd.Apply(a, b) && OpDuring.Apply(a, b)
		case RelFinishedBy:
			return OpEnd.Apply(a, b) && OpDuring.Apply(b, a)
		case RelDuring:
			return OpDuring.Apply(a, b) && OpOverlap.Apply(a, b) && !OpBegin.Apply(a, b)
		case RelContains:
			return OpDuring.Apply(b, a) && OpOverlap.Apply(a, b)
		case RelMeets:
			return OpMeet.Apply(a, b) && OpOverlap.Apply(a, b)
		case RelMetBy:
			return OpMeet.Apply(b, a) && OpOverlap.Apply(a, b)
		case RelOverlaps, RelOverlappedBy:
			return OpOverlap.Apply(a, b) && !OpDuring.Apply(a, b) && !OpDuring.Apply(b, a)
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestRelationFamilyConsistency: the relation family never contradicts
// the operand classifications.
func TestRelationFamilyConsistency(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := normTime(Tick(a1), Tick(a2))
		b := normTime(Tick(b1), Tick(b2))
		switch FamilyOf(a, b) {
		case PunctualPunctual:
			return a.IsPunctual() && b.IsPunctual()
		case IntervalInterval:
			return a.IsInterval() && b.IsInterval()
		case PunctualInterval:
			return a.IsPunctual() != b.IsPunctual()
		default:
			return false
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
