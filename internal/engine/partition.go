package engine

// Partitioner is the placement seam between detection routing and the
// topology that hosts detector state. Today the only implementation is
// the in-process Sharded engine, which hash-partitions detected event
// IDs across local worker shards; a network tier slots in behind the
// same two methods by returning remote members from Owners and routing
// to them from Route, without the callers changing.
//
// Implementations must keep Route deterministic and stable for the
// lifetime of a membership snapshot: Owners()[Route(id)] is the member
// owning id's detector state.
type Partitioner interface {
	// Route maps a detected event ID to the index of the partition
	// owning its detector state, in [0, len(Owners())).
	Route(eventID string) int

	// Owners snapshots the current membership, one entry per
	// partition, indexed by Route's result.
	Owners() []Owner
}

// Owner identifies one partition of the detection state space.
type Owner struct {
	// Shard is the partition index, dense in [0, len(Owners())).
	Shard int `json:"shard"`
	// Node locates the member hosting the partition. In-process
	// partitions report LocalNode; a network tier reports an address.
	Node string `json:"node"`
	// Detectors counts the detectors placed on the partition.
	Detectors int `json:"detectors"`
}

// LocalNode is the Owner.Node value for in-process partitions.
const LocalNode = "local"

// Compile-time check: the in-process sharded engine is a Partitioner.
var _ Partitioner = (*Sharded)(nil)

// Route implements Partitioner with the engine's FNV-1a placement.
// It reports where a detector for eventID lives (or would live).
func (s *Sharded) Route(eventID string) int { return s.shardOf(eventID) }

// Owners implements Partitioner: every shard of the in-process engine
// is one local member. It is safe to call at any time — /v1/stats
// serves it at runtime — because placement counts are snapshotted
// atomically rather than read out of the banks' detector tables, so it
// cannot race a concurrent AddDetector.
func (s *Sharded) Owners() []Owner {
	out := make([]Owner, len(s.banks))
	for i := range s.banks {
		out[i] = Owner{Shard: i, Node: LocalNode, Detectors: int(s.placed[i].Load())}
	}
	return out
}
