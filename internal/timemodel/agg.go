package timemodel

import (
	"errors"
	"fmt"
)

// ErrNoOperands is returned by aggregation functions applied to an empty
// operand list.
var ErrNoOperands = errors.New("timemodel: aggregation over no operands")

// AggFunc is a temporal aggregation function g_t from the paper's temporal
// event conditions (Eq. 4.3): it combines the occurrence times of n entities
// into a single occurrence time.
type AggFunc func(times []Time) (Time, error)

// Earliest returns the occurrence with the smallest start tick; ties are
// broken toward the smaller end tick so the result is deterministic.
func Earliest(times []Time) (Time, error) {
	if len(times) == 0 {
		return Time{}, fmt.Errorf("earliest: %w", ErrNoOperands)
	}
	best := times[0]
	for _, t := range times[1:] {
		if t.start < best.start || (t.start == best.start && t.end < best.end) {
			best = t
		}
	}
	return best, nil
}

// Latest returns the occurrence with the largest end tick; ties are broken
// toward the larger start tick.
func Latest(times []Time) (Time, error) {
	if len(times) == 0 {
		return Time{}, fmt.Errorf("latest: %w", ErrNoOperands)
	}
	best := times[0]
	for _, t := range times[1:] {
		if t.end > best.end || (t.end == best.end && t.start > best.start) {
			best = t
		}
	}
	return best, nil
}

// Span returns the smallest interval containing every operand — the temporal
// hull. Observers use it to estimate the occurrence time of a composite
// event from the occurrence times of its constituents.
func Span(times []Time) (Time, error) {
	if len(times) == 0 {
		return Time{}, fmt.Errorf("span: %w", ErrNoOperands)
	}
	out := times[0]
	for _, t := range times[1:] {
		out = out.Hull(t)
	}
	return out, nil
}

// Common returns the intersection of all operands, the ticks during which
// every operand holds. It returns an error when the intersection is empty.
func Common(times []Time) (Time, error) {
	if len(times) == 0 {
		return Time{}, fmt.Errorf("common: %w", ErrNoOperands)
	}
	lo, hi := times[0].start, times[0].end
	for _, t := range times[1:] {
		if t.start > lo {
			lo = t.start
		}
		if t.end < hi {
			hi = t.end
		}
	}
	if hi < lo {
		return Time{}, errors.New("timemodel: common: operands share no ticks")
	}
	return Time{start: lo, end: hi}, nil
}

// aggregations is the registry used by the condition language to resolve
// g_t by name.
var aggregations = map[string]AggFunc{
	"earliest": Earliest,
	"latest":   Latest,
	"span":     Span,
	"common":   Common,
}

// Aggregation resolves a temporal aggregation function by its
// condition-language name ("earliest", "latest", "span", "common").
func Aggregation(name string) (AggFunc, bool) {
	f, ok := aggregations[name]
	return f, ok
}

// AggregationNames lists the registered temporal aggregation names; the
// order is unspecified.
func AggregationNames() []string {
	names := make([]string, 0, len(aggregations))
	for n := range aggregations {
		names = append(names, n)
	}
	return names
}
