// Package stcps is a Go implementation of the spatio-temporal event model
// for cyber-physical systems of Tan, Vuran, Goddard (ICDCS Workshops
// 2009), together with every substrate the paper's architecture depends
// on: a physical-world simulator, a sensor/actor network, a
// publish-subscribe CPS network, the layered observer hierarchy
// (motes → sinks → CCUs), a database server, and an event detection
// latency analysis.
//
// A System assembles the full Figure-1 architecture. Events are declared
// with EventSpec, whose When field uses the condition language — the
// textual form of the paper's composite event conditions:
//
//	sys, _ := stcps.NewSystem(stcps.Config{Seed: 1})
//	... add motes, sinks, CCUs ...
//	sys.OnMote("MT1", stcps.EventSpec{
//	    ID:    "S.near",
//	    Roles: []stcps.Role{{Name: "x", Source: "SRrange"}},
//	    When:  "x.range < 25",
//	})
//	report, _ := sys.Run(10_000)
package stcps

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/stcps/stcps/internal/db"
	"github.com/stcps/stcps/internal/network"
	"github.com/stcps/stcps/internal/node"
	"github.com/stcps/stcps/internal/phys"
	"github.com/stcps/stcps/internal/sim"
	"github.com/stcps/stcps/internal/timemodel"
	"github.com/stcps/stcps/internal/wsn"
)

// System errors.
var (
	// ErrStarted is returned when mutating a system after Run.
	ErrStarted = errors.New("stcps: system already ran")
	// ErrUnknownNode is returned when a node id cannot be resolved.
	ErrUnknownNode = errors.New("stcps: unknown node")
)

// Config parameterizes a System. The zero value of each field selects a
// sensible default.
type Config struct {
	// Seed drives all simulated randomness (default 1).
	Seed int64
	// Radio is the sensor-network channel model (default: range 30,
	// 2-tick hops, no loss).
	Radio Radio
	// ActorRadio is the actor-network channel model (default: Radio).
	ActorRadio Radio
	// BusDelay is the CPS-network delivery delay (default 3).
	BusDelay Tick
	// WorldResolution is the ground-truth sampling period (default 5).
	WorldResolution Tick
	// LogTTL is the delay before instances are auto-transferred to the
	// database server (default 10), per Section 3.
	LogTTL Tick
	// DBCell is the database spatial-index cell size (default 16).
	DBCell float64
	// DBRetention bounds the database server's memory (the zero value
	// retains everything).
	DBRetention Retention
}

func (c *Config) normalize() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Radio.Range == 0 {
		c.Radio = Radio{Range: 30, HopDelay: 2, LossRate: 0}
	}
	if c.ActorRadio.Range == 0 {
		c.ActorRadio = c.Radio
	}
	if c.BusDelay == 0 {
		c.BusDelay = 3
	}
	if c.WorldResolution == 0 {
		c.WorldResolution = 5
	}
	if c.LogTTL == 0 {
		c.LogTTL = 10
	}
}

// System is an assembled CPS: the Figure-1 architecture ready to run.
// It is not safe for concurrent use; build it, run it, read the report.
type System struct {
	cfg        Config
	sched      *sim.Scheduler
	world      *phys.World
	sensNet    *wsn.Network
	actorNet   *wsn.Network
	bus        *network.SimBus
	store      *db.Store
	motes      map[string]*node.MoteNode
	sinks      map[string]*node.SinkNode
	ccus       map[string]*node.CCU
	dispatches map[string]*node.DispatchNode
	actors     map[string]*node.ActorMote
	started    bool
}

// NewSystem creates an empty system.
func NewSystem(cfg Config) (*System, error) {
	cfg.normalize()
	sched := sim.New(cfg.Seed)
	world, err := phys.NewWorld(sched, cfg.WorldResolution)
	if err != nil {
		return nil, err
	}
	sensNet, err := wsn.New(sched, cfg.Radio)
	if err != nil {
		return nil, fmt.Errorf("stcps: sensor network: %w", err)
	}
	actorNet, err := wsn.New(sched, cfg.ActorRadio)
	if err != nil {
		return nil, fmt.Errorf("stcps: actor network: %w", err)
	}
	bus, err := network.NewSimBus(sched, cfg.BusDelay)
	if err != nil {
		return nil, err
	}
	store, err := db.New(cfg.DBCell)
	if err != nil {
		return nil, err
	}
	store.SetRetention(cfg.DBRetention)
	return &System{
		cfg:        cfg,
		sched:      sched,
		world:      world,
		sensNet:    sensNet,
		actorNet:   actorNet,
		bus:        bus,
		store:      store,
		motes:      make(map[string]*node.MoteNode),
		sinks:      make(map[string]*node.SinkNode),
		ccus:       make(map[string]*node.CCU),
		dispatches: make(map[string]*node.DispatchNode),
		actors:     make(map[string]*node.ActorMote),
	}, nil
}

// World exposes the simulated physical world for scenario setup (objects,
// phenomena, ground-truth watchers).
func (s *System) World() *phys.World { return s.world }

// Store exposes the database server.
func (s *System) Store() *db.Store { return s.store }

// Snapshot writes the database server's contents in the canonical
// NDJSON snapshot format — byte-reproducible across runs and reloadable
// with LoadSnapshot (or by a durable Engine's recovery path).
func (s *System) Snapshot(w io.Writer) error { return s.store.Snapshot(w) }

// LoadSnapshot replays a snapshot into the database server, keeping
// existing contents (duplicates are ignored).
func (s *System) LoadSnapshot(r io.Reader) error { return s.store.Load(r) }

// Now returns the current virtual time.
func (s *System) Now() Tick { return s.sched.Now() }

// AddSensorMote registers a sensor mote observer with its sensors.
func (s *System) AddSensorMote(id string, pos Point, sensors []SensorConfig) error {
	if s.started {
		return ErrStarted
	}
	if _, err := s.sensNet.AddMote(id, pos); err != nil {
		return err
	}
	m, err := node.NewMoteNode(s.sched, s.world, s.sensNet, id, sensors, s.store, s.cfg.LogTTL)
	if err != nil {
		return err
	}
	s.motes[id] = m
	return nil
}

// AddSink registers a WSN sink node.
func (s *System) AddSink(id string, pos Point) error {
	if s.started {
		return ErrStarted
	}
	sk, err := node.NewSinkNode(s.sched, s.sensNet, s.bus, s.store, id, pos, s.cfg.LogTTL)
	if err != nil {
		return err
	}
	s.sinks[id] = sk
	return nil
}

// AddCCU registers a CPS control unit.
func (s *System) AddCCU(id string, pos Point) error {
	if s.started {
		return ErrStarted
	}
	c, err := node.NewCCU(s.sched, s.bus, s.store, id, pos, s.cfg.LogTTL)
	if err != nil {
		return err
	}
	s.ccus[id] = c
	return nil
}

// AddDispatch registers a dispatch node gateway into the actor network.
func (s *System) AddDispatch(id string, pos Point) error {
	if s.started {
		return ErrStarted
	}
	d, err := node.NewDispatchNode(s.bus, s.actorNet, id, pos)
	if err != nil {
		return err
	}
	s.dispatches[id] = d
	return nil
}

// AddActorMote registers an actor mote with its actuation delay.
func (s *System) AddActorMote(id string, pos Point, delay Tick) error {
	if s.started {
		return ErrStarted
	}
	if _, err := s.actorNet.AddMote(id, pos); err != nil {
		return err
	}
	a, err := node.NewActorMote(s.sched, s.world, s.actorNet, id, delay)
	if err != nil {
		return err
	}
	s.actors[id] = a
	return nil
}

// OnMote declares a sensor event detected at a mote (first observer
// level; Eq. 5.3). Role sources name the mote's sensor IDs.
func (s *System) OnMote(moteID string, spec EventSpec) error {
	m, ok := s.motes[moteID]
	if !ok {
		return fmt.Errorf("mote %q: %w", moteID, ErrUnknownNode)
	}
	ds, err := spec.toDetect(LayerSensor)
	if err != nil {
		return err
	}
	return m.AddDetector(ds)
}

// OnSink declares a cyber-physical event detected at a sink (second
// observer level; Eq. 5.4). Role sources name sensor event IDs.
func (s *System) OnSink(sinkID string, spec EventSpec) error {
	sk, ok := s.sinks[sinkID]
	if !ok {
		return fmt.Errorf("sink %q: %w", sinkID, ErrUnknownNode)
	}
	ds, err := spec.toDetect(LayerCyberPhysical)
	if err != nil {
		return err
	}
	return sk.AddDetector(ds)
}

// OnCCU declares a cyber event detected at a CCU (highest observer
// level; Eq. 5.5). Role sources name cyber-physical or cyber event IDs.
func (s *System) OnCCU(ccuID string, spec EventSpec) error {
	c, ok := s.ccus[ccuID]
	if !ok {
		return fmt.Errorf("ccu %q: %w", ccuID, ErrUnknownNode)
	}
	ds, err := spec.toDetect(LayerCyber)
	if err != nil {
		return err
	}
	return c.AddDetector(ds)
}

// AddRule installs an event–action rule on a CCU.
func (s *System) AddRule(ccuID string, r Rule) error {
	c, ok := s.ccus[ccuID]
	if !ok {
		return fmt.Errorf("ccu %q: %w", ccuID, ErrUnknownNode)
	}
	return c.AddRule(r)
}

// PlanDescriptions lists every declared event's compiled evaluation
// plan across the system's observers, as "node/eventID: plan", sorted —
// log it at startup to see how each condition will be evaluated.
func (s *System) PlanDescriptions() []string {
	var out []string
	for id, m := range s.motes {
		for _, p := range m.Bank().PlanDescriptions() {
			out = append(out, id+"/"+p)
		}
	}
	for id, sk := range s.sinks {
		for _, p := range sk.Bank().PlanDescriptions() {
			out = append(out, id+"/"+p)
		}
	}
	for id, c := range s.ccus {
		for _, p := range c.Bank().PlanDescriptions() {
			out = append(out, id+"/"+p)
		}
	}
	sort.Strings(out)
	return out
}

// drainSlack is how long Run lets the system settle after the nominal
// horizon so in-flight messages and flushed intervals reach the store.
func (s *System) drainSlack() Tick {
	slack := 20*s.cfg.Radio.HopDelay + 20*s.cfg.ActorRadio.HopDelay + 10*s.cfg.BusDelay + s.cfg.LogTTL + 100
	return slack
}

// Run builds routes, starts sampling, runs the simulation to the horizon,
// flushes open interval detections, lets in-flight traffic drain, and
// returns the report. Run can be called once.
func (s *System) Run(until Tick) (*Report, error) {
	if s.started {
		return nil, ErrStarted
	}
	s.started = true
	if len(s.motes) > 0 {
		if err := s.sensNet.BuildRoutes(); err != nil {
			return nil, err
		}
	}
	if len(s.actors) > 0 {
		if err := s.actorNet.BuildRoutes(); err != nil {
			return nil, err
		}
	}
	if err := s.world.Start(); err != nil {
		return nil, err
	}
	for _, m := range s.motes {
		if err := m.Start(); err != nil {
			return nil, err
		}
	}
	s.sched.Run(until)

	// Close open intervals bottom-up so flushed sensor events can still
	// complete cyber-physical and cyber detections during the drain.
	for _, m := range s.motes {
		m.FlushIntervals()
	}
	s.sched.Run(until + s.drainSlack()/2)
	for _, sk := range s.sinks {
		sk.FlushIntervals()
	}
	for _, c := range s.ccus {
		c.FlushIntervals()
	}
	s.world.Finish()
	s.sched.Run(until + s.drainSlack())

	return s.buildReport(), nil
}

var _ = timemodel.Tick(0) // keep the import anchored for the aliases
