package frame

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/stcps/stcps/internal/event"
)

// Server defaults.
const (
	// DefaultBatchRecords is the preferred client batch size advertised
	// in Welcome.
	DefaultBatchRecords = 256
	// DefaultWindow is the initial credit window in records.
	DefaultWindow = 16384
	// handshakeTimeout bounds how long a fresh connection may sit
	// silent before its Hello.
	handshakeTimeout = 10 * time.Second
)

// ServerConfig parameterizes one connection's server loop.
type ServerConfig struct {
	// Offer hands one decoded batch to the engine. Offer errors are
	// fatal to the connection: the error text is sent to the client in
	// an Error frame and the already-acked records stay ingested.
	// Required.
	Offer func(b *Batch) error
	// BatchRecords is the preferred batch size advertised to the
	// client (default DefaultBatchRecords).
	BatchRecords int
	// Window is the initial credit window in records (default
	// DefaultWindow).
	Window int
	// MinWindow is the congestion floor (default max(BatchRecords,
	// Window/64)).
	MinWindow int
	// MaxPayload bounds one frame payload (default DefaultMaxPayload).
	MaxPayload uint32
	// Materialize decodes observations eagerly instead of zero-copy —
	// required for engines with a WAL, whose durability layer accepts
	// only concrete event.Observation values.
	Materialize bool
	// SlowPerRec / FastPerRec override the congestion thresholds
	// (defaults slowPerRecDefault / fastPerRecDefault).
	SlowPerRec time.Duration
	FastPerRec time.Duration
}

// ServeStats summarizes one connection after ServeConn returns.
type ServeStats struct {
	// Records and Batches count what was decoded and offered.
	Records uint64 `json:"records"`
	Batches uint64 `json:"batches"`
	// Bytes counts decoded payload bytes (frame headers excluded).
	Bytes uint64 `json:"bytes"`
	// SlowDowns and Resumes count Window frames sent shrinking or
	// growing the credit window.
	SlowDowns uint64 `json:"slowDowns"`
	Resumes   uint64 `json:"resumes"`
	// Torn reports whether the stream ended on a torn or corrupt
	// frame rather than a clean EOF.
	Torn bool `json:"torn"`
}

// deadlineConn is the optional deadline surface of a net.Conn.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// ServeConn runs the wire protocol server loop over one connection
// until the client closes it (clean EOF), a frame tears or corrupts,
// or Offer fails. It returns the connection's stats alongside any
// error. The caller closes conn.
//
// Semantics on a torn stream: records are acked only after their batch
// is offered, so a torn or corrupt final frame is simply dropped — the
// never-acked partial batch never reaches the engine, and everything
// acked before it stays ingested.
func ServeConn(conn io.ReadWriter, cfg ServerConfig) (ServeStats, error) {
	var stats ServeStats
	if cfg.Offer == nil {
		return stats, errors.New("frame: ServerConfig.Offer is required")
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = DefaultBatchRecords
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = cfg.Window / 64
		if cfg.MinWindow < cfg.BatchRecords {
			cfg.MinWindow = cfg.BatchRecords
		}
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	fr := NewReader(br, cfg.MaxPayload)
	sendErr := func(msg string) {
		// Best effort: the client may already be gone.
		_ = WriteFrame(bw, AppendError(nil, msg))
		_ = bw.Flush()
	}

	// Handshake. Bound the wait for Hello so an idle dialer cannot pin
	// the connection handler forever.
	if dc, ok := conn.(deadlineConn); ok {
		_ = dc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	}
	hello, _, err := fr.Next()
	if err != nil {
		stats.Torn = true
		return stats, fmt.Errorf("frame: reading hello: %w", err)
	}
	if err := ParseHello(hello); err != nil {
		sendErr(err.Error())
		return stats, err
	}
	if dc, ok := conn.(deadlineConn); ok {
		_ = dc.SetReadDeadline(time.Time{})
	}
	if err := WriteFrame(bw, AppendWelcome(nil, cfg.Window, cfg.BatchRecords)); err != nil {
		return stats, err
	}
	if err := bw.Flush(); err != nil {
		return stats, err
	}

	ctrl := newCongestion(cfg.Window, cfg.MinWindow, cfg.SlowPerRec, cfg.FastPerRec)
	interner := event.NewInterner()
	var (
		batch      Batch
		processed  uint64
		out        []byte // reused control-frame payload buffer
		prevWindow = cfg.Window
	)
	for {
		payload, _, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return stats, nil
		}
		if err != nil {
			// Torn or corrupt frame: drop it without poisoning what was
			// already acked, tell the client (best effort), close.
			stats.Torn = true
			sendErr(err.Error())
			return stats, err
		}
		switch payload[0] {
		case MsgBatch:
			if !cfg.Materialize {
				// The batch will own this buffer (its observation views
				// alias it): hand it over instead of reusing it.
				fr.Detach()
			}
			if err := DecodeBatch(payload, cfg.Materialize, interner, &batch); err != nil {
				sendErr(err.Error())
				return stats, err
			}
			start := time.Now()
			if err := cfg.Offer(&batch); err != nil {
				sendErr(err.Error())
				return stats, fmt.Errorf("frame: offer: %w", err)
			}
			elapsed := time.Since(start)
			processed += uint64(batch.Len())
			stats.Records += uint64(batch.Len())
			stats.Batches++
			stats.Bytes += uint64(batch.Bytes())
			out = AppendAck(out[:0], processed)
			if err := WriteFrame(bw, out); err != nil {
				return stats, err
			}
			if w, changed := ctrl.observe(batch.Len(), elapsed); changed {
				if w < prevWindow {
					stats.SlowDowns++
				} else {
					stats.Resumes++
				}
				prevWindow = w
				out = AppendWindow(out[:0], w)
				if err := WriteFrame(bw, out); err != nil {
					return stats, err
				}
			}
			if err := bw.Flush(); err != nil {
				return stats, err
			}
		case MsgHello:
			err := fmt.Errorf("%w: duplicate hello", ErrProtocol)
			sendErr(err.Error())
			return stats, err
		default:
			err := fmt.Errorf("%w: unexpected message type %#02x", ErrProtocol, payload[0])
			sendErr(err.Error())
			return stats, err
		}
	}
}
