package event

import (
	"fmt"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Observation is a physical observation O(MT_id, SR_id, i){t°, l°, V}
// (Eq. 5.2): a snapshot of the attribute, temporal, or spatial status of a
// physical event, made by sensor SR installed on sensor mote MT as the
// i-th observation. A sensor alone is not an observer (Def. 4.3) — it
// cannot evaluate conditions — so observations are raw inputs to the
// sensor mote's evaluation, not event instances.
type Observation struct {
	// Mote is the sensor mote identifier MT_id.
	Mote string `json:"mote"`
	// Sensor is the sensor identifier SR_id.
	Sensor string `json:"sensor"`
	// Seq is the observation sequence number i.
	Seq uint64 `json:"seq"`
	// Time is the observation occurrence time t° (sampling timestamp).
	Time timemodel.Time `json:"time"`
	// Loc is the observation occurrence location l° (spacestamp).
	Loc spatial.Location `json:"loc"`
	// Attrs is the observed attribute set V.
	Attrs Attrs `json:"attrs,omitempty"`
}

// EntityID implements Entity using the paper's O(MT,SR,i) notation.
func (o Observation) EntityID() string {
	return fmt.Sprintf("O(%s,%s,%d)", o.Mote, o.Sensor, o.Seq)
}

// OccTime implements Entity.
func (o Observation) OccTime() timemodel.Time { return o.Time }

// OccLoc implements Entity.
func (o Observation) OccLoc() spatial.Location { return o.Loc }

// Attr implements Entity.
func (o Observation) Attr(name string) (float64, bool) {
	v, ok := o.Attrs[name]
	return v, ok
}

var _ Entity = Observation{}
