package condition

import (
	"fmt"
	"sort"

	"github.com/stcps/stcps/internal/spatial"
	"github.com/stcps/stcps/internal/timemodel"
)

// Expr is a composite event condition (Eq. 4.5): a tree of attribute-based,
// temporal and spatial conditions combined with the logical operators AND,
// OR, NOT.
type Expr interface {
	// Eval evaluates the condition against a binding of roles to
	// entities. Errors indicate unbound roles, missing attributes, or
	// evaluation failures — the detection engine treats such bindings as
	// unsatisfied.
	Eval(b Binding) (bool, error)
	// Roles reports all role names referenced by the condition.
	Roles() []string
	// String renders the condition in the condition language; the output
	// parses back to an equivalent condition.
	String() string
}

// And is the logical conjunction of two conditions.
type And struct {
	// L and R are the operands.
	L, R Expr
}

// Eval implements Expr with short-circuiting.
func (a And) Eval(b Binding) (bool, error) {
	lv, err := a.L.Eval(b)
	if err != nil {
		return false, err
	}
	if !lv {
		return false, nil
	}
	return a.R.Eval(b)
}

// Roles implements Expr.
func (a And) Roles() []string { return mergeRoles(a.L.Roles(), a.R.Roles()) }

// String implements Expr.
func (a And) String() string {
	return fmt.Sprintf("(%s and %s)", a.L, a.R)
}

// Or is the logical disjunction of two conditions.
type Or struct {
	// L and R are the operands.
	L, R Expr
}

// Eval implements Expr with short-circuiting.
func (o Or) Eval(b Binding) (bool, error) {
	lv, err := o.L.Eval(b)
	if err != nil {
		return false, err
	}
	if lv {
		return true, nil
	}
	return o.R.Eval(b)
}

// Roles implements Expr.
func (o Or) Roles() []string { return mergeRoles(o.L.Roles(), o.R.Roles()) }

// String implements Expr.
func (o Or) String() string {
	return fmt.Sprintf("(%s or %s)", o.L, o.R)
}

// Not is the logical negation of a condition.
type Not struct {
	// X is the negated condition.
	X Expr
}

// Eval implements Expr.
func (n Not) Eval(b Binding) (bool, error) {
	v, err := n.X.Eval(b)
	if err != nil {
		return false, err
	}
	return !v, nil
}

// Roles implements Expr.
func (n Not) Roles() []string { return n.X.Roles() }

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("(not %s)", n.X) }

// CmpNum is an attribute-based event condition g_v[..] OP_R C (Eq. 4.2).
// Both sides are numeric terms, so both the paper's constant form
// (avg(x.v, y.v) > 5) and entity-to-entity comparisons are expressible.
type CmpNum struct {
	// L and R are the numeric operands.
	L, R Term
	// Op is the relational operator.
	Op RelOp
}

// Eval implements Expr.
func (c CmpNum) Eval(b Binding) (bool, error) {
	lv, err := EvalNum(c.L, b)
	if err != nil {
		return false, err
	}
	rv, err := EvalNum(c.R, b)
	if err != nil {
		return false, err
	}
	return c.Op.Apply(lv, rv), nil
}

// Roles implements Expr.
func (c CmpNum) Roles() []string { return mergeRoles(termRoles(c.L), termRoles(c.R)) }

// String implements Expr.
func (c CmpNum) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// CmpTime is a temporal event condition g_t[..] OP_T C_t (Eq. 4.3).
type CmpTime struct {
	// L and R are the temporal operands.
	L, R Term
	// Op is the temporal operator.
	Op timemodel.Operator
}

// Eval implements Expr.
func (c CmpTime) Eval(b Binding) (bool, error) {
	lv, err := EvalTime(c.L, b)
	if err != nil {
		return false, err
	}
	rv, err := EvalTime(c.R, b)
	if err != nil {
		return false, err
	}
	return c.Op.Apply(lv, rv), nil
}

// Roles implements Expr.
func (c CmpTime) Roles() []string { return mergeRoles(termRoles(c.L), termRoles(c.R)) }

// String implements Expr.
func (c CmpTime) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// CmpLoc is a spatial event condition g_s[..] OP_S C_s (Eq. 4.4).
type CmpLoc struct {
	// L and R are the spatial operands.
	L, R Term
	// Op is the spatial operator.
	Op spatial.Operator
}

// Eval implements Expr.
func (c CmpLoc) Eval(b Binding) (bool, error) {
	lv, err := EvalLoc(c.L, b)
	if err != nil {
		return false, err
	}
	rv, err := EvalLoc(c.R, b)
	if err != nil {
		return false, err
	}
	return c.Op.Apply(lv, rv), nil
}

// Roles implements Expr.
func (c CmpLoc) Roles() []string { return mergeRoles(termRoles(c.L), termRoles(c.R)) }

// String implements Expr.
func (c CmpLoc) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// BoolLit is a constant condition; "true" is useful as a neutral element
// when composing conditions programmatically.
type BoolLit struct {
	// V is the constant truth value.
	V bool
}

// Eval implements Expr.
func (l BoolLit) Eval(Binding) (bool, error) { return l.V, nil }

// Roles implements Expr.
func (BoolLit) Roles() []string { return nil }

// String implements Expr.
func (l BoolLit) String() string {
	if l.V {
		return "true"
	}
	return "false"
}

// termRoles extracts role references from a term.
func termRoles(t Term) []string {
	switch v := t.(type) {
	case AttrRef:
		return []string{v.Role}
	case TimeRef:
		return []string{v.Role}
	case LocRef:
		return []string{v.Role}
	case TimeShift:
		return mergeRoles(termRoles(v.T), termRoles(v.D))
	case NumArith:
		return mergeRoles(termRoles(v.L), termRoles(v.R))
	case Call:
		var out []string
		for _, a := range v.Args {
			out = mergeRoles(out, termRoles(a))
		}
		return out
	default:
		return nil
	}
}

// mergeRoles merges two role lists, deduplicated and sorted.
func mergeRoles(a, b []string) []string {
	seen := make(map[string]struct{}, len(a)+len(b))
	for _, r := range a {
		seen[r] = struct{}{}
	}
	for _, r := range b {
		seen[r] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Compile-time interface checks.
var (
	_ Expr = And{}
	_ Expr = Or{}
	_ Expr = Not{}
	_ Expr = CmpNum{}
	_ Expr = CmpTime{}
	_ Expr = CmpLoc{}
	_ Expr = BoolLit{}
)
