package spatial

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestLocationZeroValueIsPoint(t *testing.T) {
	var l Location
	if !l.IsPoint() {
		t.Fatal("zero Location should be a point")
	}
	if l.Kind() != KindPoint {
		t.Fatalf("Kind = %v, want KindPoint", l.Kind())
	}
	if !l.Point().Equal(Pt(0, 0)) {
		t.Fatalf("zero point = %v", l.Point())
	}
}

func TestLocationAccessors(t *testing.T) {
	p := AtPoint(3, 4)
	if p.IsField() {
		t.Error("point location reports field")
	}
	if _, ok := p.Field(); ok {
		t.Error("point location returned a field")
	}
	sq := unitSquare()
	fl := InField(sq)
	if !fl.IsField() {
		t.Error("field location reports point")
	}
	f, ok := fl.Field()
	if !ok || !f.Equal(sq) {
		t.Error("field accessor mismatch")
	}
	if !fl.Centroid().Equal(Pt(0.5, 0.5)) {
		t.Errorf("field centroid = %v", fl.Centroid())
	}
	if !fl.Point().Equal(Pt(0.5, 0.5)) {
		t.Errorf("field Point() should be the centroid, got %v", fl.Point())
	}
}

func TestKindString(t *testing.T) {
	if KindPoint.String() != "point" || KindField.String() != "field" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestLocationJSONRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		loc  Location
	}{
		{"point", AtPoint(1.5, -2.25)},
		{"field", InField(MustField(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)))},
		{"origin point", AtPoint(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data, err := json.Marshal(tt.loc)
			if err != nil {
				t.Fatal(err)
			}
			var got Location
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatal(err)
			}
			if got.Kind() != tt.loc.Kind() {
				t.Fatalf("kind changed: %v -> %v", tt.loc.Kind(), got.Kind())
			}
			if !OpEqualS.Apply(got, tt.loc) {
				t.Fatalf("round trip changed location: %v -> %v", tt.loc, got)
			}
		})
	}
}

func TestLocationJSONErrors(t *testing.T) {
	var l Location
	if err := json.Unmarshal([]byte(`{"kind":"blob"}`), &l); !errors.Is(err, ErrUnknownLocationKind) {
		t.Errorf("unknown kind err = %v", err)
	}
	if err := json.Unmarshal([]byte(`{"kind":"field","ring":[[0,0],[1,1]]}`), &l); err == nil {
		t.Error("degenerate field ring should fail to decode")
	}
	if err := json.Unmarshal([]byte(`{`), &l); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestLocationString(t *testing.T) {
	if AtPoint(1, 2).String() != "point(1 2)" {
		t.Errorf("point string = %q", AtPoint(1, 2).String())
	}
	if InField(unitSquare()).String() == "" {
		t.Error("field string empty")
	}
}
