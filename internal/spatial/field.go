package spatial

import (
	"errors"
	"fmt"
	"math"
)

// Validation errors for fields.
var (
	// ErrDegenerateField is returned when a field has fewer than three
	// vertices or (numerically) zero area.
	ErrDegenerateField = errors.New("spatial: degenerate field")
	// ErrSelfIntersecting is returned when a field's boundary crosses
	// itself.
	ErrSelfIntersecting = errors.New("spatial: self-intersecting field")
)

// Field is a location field — the polytope of the paper's spatial model
// (Section 4.2, Field Event). It is a simple polygon stored as a ring of
// vertices without a closing duplicate. Fields are immutable after
// construction: accessor methods copy state where needed.
type Field struct {
	ring []Point
	bbox rect
}

// rect is an axis-aligned bounding box used internally for fast rejection.
type rect struct {
	minX, minY, maxX, maxY float64
}

func (r rect) contains(p Point) bool {
	return p.X >= r.minX-Epsilon && p.X <= r.maxX+Epsilon &&
		p.Y >= r.minY-Epsilon && p.Y <= r.maxY+Epsilon
}

func (r rect) intersects(o rect) bool {
	return r.minX <= o.maxX+Epsilon && o.minX <= r.maxX+Epsilon &&
		r.minY <= o.maxY+Epsilon && o.minY <= r.maxY+Epsilon
}

func boundsOf(ring []Point) rect {
	r := rect{
		minX: math.Inf(1), minY: math.Inf(1),
		maxX: math.Inf(-1), maxY: math.Inf(-1),
	}
	for _, p := range ring {
		r.minX = math.Min(r.minX, p.X)
		r.minY = math.Min(r.minY, p.Y)
		r.maxX = math.Max(r.maxX, p.X)
		r.maxY = math.Max(r.maxY, p.Y)
	}
	return r
}

// NewField constructs a field from a vertex ring. The ring must have at
// least three vertices, enclose a non-zero area, and must not
// self-intersect. The input slice is copied.
func NewField(ring []Point) (Field, error) {
	if len(ring) < 3 {
		return Field{}, fmt.Errorf("%d vertices: %w", len(ring), ErrDegenerateField)
	}
	own := make([]Point, len(ring))
	copy(own, ring)
	f := Field{ring: own, bbox: boundsOf(own)}
	if f.selfIntersects() {
		return Field{}, ErrSelfIntersecting
	}
	if math.Abs(f.SignedArea()) <= Epsilon {
		return Field{}, fmt.Errorf("zero area: %w", ErrDegenerateField)
	}
	return f, nil
}

// MustField is like NewField but panics on invalid input. It is intended
// for literals in tests and examples.
func MustField(ring ...Point) Field {
	f, err := NewField(ring)
	if err != nil {
		panic(err)
	}
	return f
}

// Rect returns the rectangular field with opposite corners (x1,y1), (x2,y2).
func Rect(x1, y1, x2, y2 float64) (Field, error) {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return NewField([]Point{
		{X: x1, Y: y1}, {X: x2, Y: y1}, {X: x2, Y: y2}, {X: x1, Y: y2},
	})
}

// Circle returns a regular n-gon approximation of the circle with the given
// center and radius. n must be at least 3; radius must be positive.
func Circle(center Point, radius float64, n int) (Field, error) {
	if n < 3 {
		return Field{}, fmt.Errorf("circle with %d segments: %w", n, ErrDegenerateField)
	}
	if radius <= 0 {
		return Field{}, fmt.Errorf("circle with radius %g: %w", radius, ErrDegenerateField)
	}
	ring := make([]Point, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ring[i] = Point{
			X: center.X + radius*math.Cos(a),
			Y: center.Y + radius*math.Sin(a),
		}
	}
	return NewField(ring)
}

// Vertices returns a copy of the field's vertex ring.
func (f Field) Vertices() []Point {
	out := make([]Point, len(f.ring))
	copy(out, f.ring)
	return out
}

// NumVertices returns the number of vertices in the ring.
func (f Field) NumVertices() int { return len(f.ring) }

// SignedArea returns the shoelace signed area: positive for
// counter-clockwise rings.
func (f Field) SignedArea() float64 {
	var sum float64
	n := len(f.ring)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += f.ring[i].Cross(f.ring[j])
	}
	return sum / 2
}

// Area returns the enclosed area of the field.
func (f Field) Area() float64 { return math.Abs(f.SignedArea()) }

// Perimeter returns the total boundary length.
func (f Field) Perimeter() float64 {
	var sum float64
	n := len(f.ring)
	for i := 0; i < n; i++ {
		sum += f.ring[i].Dist(f.ring[(i+1)%n])
	}
	return sum
}

// Centroid returns the area centroid of the field.
func (f Field) Centroid() Point {
	var cx, cy, a float64
	n := len(f.ring)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cr := f.ring[i].Cross(f.ring[j])
		cx += (f.ring[i].X + f.ring[j].X) * cr
		cy += (f.ring[i].Y + f.ring[j].Y) * cr
		a += cr
	}
	if math.Abs(a) <= Epsilon {
		// Fall back to the vertex mean for (near) degenerate rings.
		var sx, sy float64
		for _, p := range f.ring {
			sx += p.X
			sy += p.Y
		}
		return Point{X: sx / float64(n), Y: sy / float64(n)}
	}
	return Point{X: cx / (3 * a), Y: cy / (3 * a)}
}

// ContainsPoint reports whether p is inside the field or on its boundary,
// using ray casting with an explicit boundary test. Boundary points count
// as inside, matching the paper's Inside operator semantics.
func (f Field) ContainsPoint(p Point) bool {
	if !f.bbox.contains(p) {
		return false
	}
	n := len(f.ring)
	for i := 0; i < n; i++ {
		a, b := f.ring[i], f.ring[(i+1)%n]
		if orientation(a, b, p) == 0 && onSegment(p, a, b) {
			return true
		}
	}
	inside := false
	for i := 0; i < n; i++ {
		a, b := f.ring[i], f.ring[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if x > p.X {
				inside = !inside
			}
		}
	}
	return inside
}

// ContainsField reports whether every point of g lies within f. For simple
// polygons this holds when every vertex of g is inside f and no boundary
// edges properly cross.
func (f Field) ContainsField(g Field) bool {
	if !f.bbox.intersects(g.bbox) {
		return false
	}
	for _, v := range g.ring {
		if !f.ContainsPoint(v) {
			return false
		}
	}
	return !f.edgesProperlyCross(g)
}

// IntersectsField reports whether f and g share at least one point
// (boundary touch counts), implementing the paper's Joint operator for the
// field-with-field relation family.
func (f Field) IntersectsField(g Field) bool {
	if !f.bbox.intersects(g.bbox) {
		return false
	}
	n, m := len(f.ring), len(g.ring)
	for i := 0; i < n; i++ {
		a1, a2 := f.ring[i], f.ring[(i+1)%n]
		for j := 0; j < m; j++ {
			if SegmentsIntersect(a1, a2, g.ring[j], g.ring[(j+1)%m]) {
				return true
			}
		}
	}
	// No boundary intersection: one may still contain the other entirely.
	return f.ContainsPoint(g.ring[0]) || g.ContainsPoint(f.ring[0])
}

// DistToPoint returns 0 if p is inside the field, otherwise the minimum
// distance from p to the field boundary.
func (f Field) DistToPoint(p Point) float64 {
	if f.ContainsPoint(p) {
		return 0
	}
	d := math.Inf(1)
	n := len(f.ring)
	for i := 0; i < n; i++ {
		if v := DistPointSegment(p, f.ring[i], f.ring[(i+1)%n]); v < d {
			d = v
		}
	}
	return d
}

// DistToField returns 0 if the fields intersect, otherwise the minimum
// distance between their boundaries.
func (f Field) DistToField(g Field) float64 {
	if f.IntersectsField(g) {
		return 0
	}
	d := math.Inf(1)
	n, m := len(f.ring), len(g.ring)
	for i := 0; i < n; i++ {
		a1, a2 := f.ring[i], f.ring[(i+1)%n]
		for j := 0; j < m; j++ {
			if v := distSegments(a1, a2, g.ring[j], g.ring[(j+1)%m]); v < d {
				d = v
			}
		}
	}
	return d
}

// Equal reports whether two fields have identical rings up to rotation and
// direction, within Epsilon per coordinate.
func (f Field) Equal(g Field) bool {
	n := len(f.ring)
	if n != len(g.ring) {
		return false
	}
	matchFrom := func(offset int, reversed bool) bool {
		for i := 0; i < n; i++ {
			j := (offset + i) % n
			if reversed {
				j = ((offset-i)%n + n) % n
			}
			if !f.ring[i].Equal(g.ring[j]) {
				return false
			}
		}
		return true
	}
	for off := 0; off < n; off++ {
		if matchFrom(off, false) || matchFrom(off, true) {
			return true
		}
	}
	return false
}

// edgesProperlyCross reports whether any boundary edge of f properly
// crosses a boundary edge of g (shared endpoints and collinear touching do
// not count).
func (f Field) edgesProperlyCross(g Field) bool {
	n, m := len(f.ring), len(g.ring)
	for i := 0; i < n; i++ {
		a1, a2 := f.ring[i], f.ring[(i+1)%n]
		for j := 0; j < m; j++ {
			b1, b2 := g.ring[j], g.ring[(j+1)%m]
			o1 := orientation(a1, a2, b1)
			o2 := orientation(a1, a2, b2)
			o3 := orientation(b1, b2, a1)
			o4 := orientation(b1, b2, a2)
			if ((o1 > 0 && o2 < 0) || (o1 < 0 && o2 > 0)) &&
				((o3 > 0 && o4 < 0) || (o3 < 0 && o4 > 0)) {
				return true
			}
		}
	}
	return false
}

// selfIntersects reports whether any two non-adjacent boundary edges share
// a point.
func (f Field) selfIntersects() bool {
	n := len(f.ring)
	for i := 0; i < n; i++ {
		a1, a2 := f.ring[i], f.ring[(i+1)%n]
		for j := i + 1; j < n; j++ {
			// Skip adjacent edges (they share an endpoint by construction).
			if j == i || (j+1)%n == i || (i+1)%n == j {
				continue
			}
			if SegmentsIntersect(a1, a2, f.ring[j], f.ring[(j+1)%n]) {
				return true
			}
		}
	}
	return false
}

// String renders the field as "field((x1 y1),(x2 y2),...)".
func (f Field) String() string {
	s := "field("
	for i, p := range f.ring {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("(%g %g)", p.X, p.Y)
	}
	return s + ")"
}
